package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/waveform"
)

// This file is the warm-start differential suite: a warm-started
// verifier must produce bit-identical verdicts, stages, backtrack and
// decision counts, and witnesses to cold solves at every δ schedule —
// ascending (the seeded fast path), descending and gapped (fallback
// paths), and repeated — serially and in parallel, on suite and random
// circuits. Only the work statistics (propagations, narrowings, queue
// high-water) may differ; they are excluded from the canonical form.

// warmCanonical renders every warm-start-invariant field of a report.
func warmCanonical(r *Report) string {
	return fmt.Sprintf("sink=%d δ=%s %s|%s|%s|%s final=%s bt=%d wit=%v@%s dom=%d domrounds=%d dec=%d splits=%d",
		r.Sink, r.Delta, r.BeforeGITD, r.AfterGITD, r.AfterStem, r.CaseAnalysis,
		r.Final, r.Backtracks, r.Witness, r.WitnessSettle,
		r.Dominators, r.DominatorRounds, r.Stats.Decisions, r.Stats.StemSplits)
}

// warmCanonicalCircuit renders a sweep aggregate the same way.
func warmCanonicalCircuit(cr *CircuitReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "δ=%s %s|%s|%s|%s final=%s bt=%d wo=%d dom=%d domrounds=%d\n",
		cr.Delta, cr.BeforeGITD, cr.AfterGITD, cr.AfterStem, cr.CaseAnalysis,
		cr.Final, cr.Backtracks, cr.WitnessOutput, cr.Dominators, cr.DominatorRounds)
	for _, r := range cr.PerOutput {
		fmt.Fprintf(&b, "  %s\n", warmCanonical(r))
	}
	return b.String()
}

// deltaSchedules builds the δ sequences around a circuit's floating
// delay D: ascending seeds every step from the previous fixpoint,
// descending forces the cold fallback each step, gaps mixes seeded
// jumps with backward resets, and repeated replays equal thresholds
// (including the refutation-memo path above D).
func deltaSchedules(d waveform.Time) map[string][]waveform.Time {
	return map[string][]waveform.Time{
		"ascending":  {d.Sub(3), d.Sub(2), d.Sub(1), d, d.Add(1), d.Add(2), d.Add(3)},
		"descending": {d.Add(3), d.Add(1), d, d.Sub(1), d.Sub(3)},
		"gaps":       {d.Sub(4), d.Sub(1), d.Add(2), d.Sub(2), d.Add(1), d.Add(4)},
		"repeated":   {d, d, d.Add(1), d.Add(1), d.Sub(1), d.Add(1)},
	}
}

func TestWarmVsColdDifferentialSweep(t *testing.T) {
	circuits := map[string]func() *Prepared{
		"c17":  func() *Prepared { return Prepare(gen.C17(10)) },
		"c432": func() *Prepared { return Prepare(suiteCircuit(t, "c432")) },
		"c880": func() *Prepared { return Prepare(suiteCircuit(t, "c880")) },
	}
	for seed := int64(0); seed < 6; seed++ {
		s := seed
		circuits[fmt.Sprintf("rand%d", seed)] = func() *Prepared {
			return Prepare(gen.Random(s+700, 4+int(s%5), 10+int(s)*7, 5))
		}
	}

	for name, build := range circuits {
		t.Run(name, func(t *testing.T) {
			prep := build()
			ref := prep.NewVerifier(Default())
			res, err := ref.CircuitFloatingDelay()
			if err != nil {
				t.Fatal(err)
			}
			for sched, deltas := range deltaSchedules(res.Delay) {
				for _, workers := range []int{1, 4} {
					t.Run(fmt.Sprintf("%s/workers=%d", sched, workers), func(t *testing.T) {
						coldOpts := Default()
						coldOpts.UseWarmStart = false
						cold := prep.NewVerifier(coldOpts)
						warm := prep.NewVerifier(Default())
						for _, delta := range deltas {
							req := Request{Delta: delta, Workers: workers}
							want := warmCanonicalCircuit(cold.RunAll(context.Background(), req))
							got := warmCanonicalCircuit(warm.RunAll(context.Background(), req))
							if got != want {
								t.Fatalf("δ=%s warm sweep diverged:\ncold:\n%s\nwarm:\n%s", delta, want, got)
							}
						}
					})
				}
			}
		})
	}
}

// TestWarmVsColdSingleSinkSchedules drives Run directly (no sweep
// aggregation) through every schedule on every primary output, so the
// per-sink memo sees exactly the δ sequence under test.
func TestWarmVsColdSingleSinkSchedules(t *testing.T) {
	prep := Prepare(suiteCircuit(t, "c432"))
	ref := prep.NewVerifier(Default())
	res, err := ref.CircuitFloatingDelay()
	if err != nil {
		t.Fatal(err)
	}
	coldOpts := Default()
	coldOpts.UseWarmStart = false
	for sched, deltas := range deltaSchedules(res.Delay) {
		t.Run(sched, func(t *testing.T) {
			warm := prep.NewVerifier(Default())
			cold := prep.NewVerifier(coldOpts)
			for _, po := range ref.Circuit().PrimaryOutputs() {
				for _, delta := range deltas {
					req := Request{Sink: po, Delta: delta}
					want := warmCanonical(cold.Run(context.Background(), req))
					got := warmCanonical(warm.Run(context.Background(), req))
					if got != want {
						t.Fatalf("sink %d δ=%s:\ncold: %s\nwarm: %s", po, delta, want, got)
					}
				}
			}
		})
	}
}

// TestWarmConcurrentSameSink hammers one sink's memo from many
// goroutines (meaningful under -race): TryLock losers must solve cold
// and every report must carry the same canonical verdict.
func TestWarmConcurrentSameSink(t *testing.T) {
	prep := Prepare(suiteCircuit(t, "c880"))
	v := prep.NewVerifier(Default())
	po := v.Circuit().PrimaryOutputs()[0]
	delta := v.Topological().Add(1)
	want := warmCanonical(prep.NewVerifier(Default()).Run(context.Background(), Request{Sink: po, Delta: delta}))

	const goroutines = 8
	got := make([]string, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				got[i] = warmCanonical(v.Run(context.Background(), Request{Sink: po, Delta: delta}))
			}
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Fatalf("goroutine %d diverged:\nwant %s\ngot  %s", i, want, g)
		}
	}
}

// TestWarmRefutationMemo pins the monotone refutation shortcut: once a
// sink stage-1-refutes at δ, a later check at δ' ≥ δ answers from the
// memo without solving (zero propagations) and still reports N.
func TestWarmRefutationMemo(t *testing.T) {
	opts := Default()
	opts.UseConeSlicing = false // keep the memo on this verifier itself
	c := gen.C17(10)
	v := NewVerifier(c, opts)
	po := c.PrimaryOutputs()[0]
	delta := v.Topological().Add(1)

	first := v.Run(context.Background(), Request{Sink: po, Delta: delta})
	if first.Final != NoViolation || first.Propagations == 0 {
		t.Fatalf("first refutation should solve for real: %+v", first)
	}
	second := v.Run(context.Background(), Request{Sink: po, Delta: delta.Add(5)})
	if second.Final != NoViolation {
		t.Fatalf("memoed refutation verdict = %s, want N", second.Final)
	}
	if second.Propagations != 0 {
		t.Fatalf("memoed refutation did %d propagations, want 0", second.Propagations)
	}
}

// TestCaseAnalysisUnwindsDecisionStack is the trail-leak regression
// test at the engine level: witness, abandon, and cancel exits from
// case analysis must close every decision level, because warm-start
// keeps the system alive across checks.
func TestCaseAnalysisUnwindsDecisionStack(t *testing.T) {
	opts := Default()
	opts.UseConeSlicing = false // the memo under test lives on v itself
	c := gen.Hrapcenko(10)
	v := NewVerifier(c, opts)
	s, _ := c.NetByName("s")

	rep := v.Run(context.Background(), Request{Sink: s, Delta: 60})
	if rep.Final != ViolationFound {
		t.Fatalf("Hrapcenko δ=60 should witness, got %s", rep.Final)
	}
	assertNoOpenLevels(t, v, "witness exit")

	rep = v.Run(context.Background(), Request{Sink: s, Delta: 60, Budgets: Budgets{MaxBacktracks: 1}})
	if rep.Final != ViolationFound && rep.Final != Abandoned {
		t.Fatalf("tight budget: got %s", rep.Final)
	}
	assertNoOpenLevels(t, v, "budget exit")
}

func assertNoOpenLevels(t *testing.T, v *Verifier, when string) {
	t.Helper()
	v.warmMu.Lock()
	defer v.warmMu.Unlock()
	checked := 0
	for sink, w := range v.warm {
		w.mu.Lock()
		if w.sys != nil {
			checked++
			if lv := w.sys.Levels(); lv != 0 {
				w.mu.Unlock()
				t.Fatalf("%s: sink %d's system has %d decision levels open", when, sink, lv)
			}
		}
		w.mu.Unlock()
	}
	if checked == 0 {
		t.Fatalf("%s: no warm system to inspect — memo plumbing broken", when)
	}
}
