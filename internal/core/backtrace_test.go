package core

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/waveform"
)

// Direct unit tests of the FAN-style backtrace over a hand-built
// system (same package: internals accessible).

func buildBacktraceCkt(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("bt")
	b.Input("a")
	b.Input("b")
	b.Input("c")
	b.Input("d")
	b.Gate(circuit.AND, 10, "p", "a", "b") // objective p=1 → all inputs 1
	b.Gate(circuit.OR, 10, "q", "c", "d")  // objective q=1 → one input 1
	b.Gate(circuit.XOR, 10, "x", "p", "q") // parity hop
	b.Gate(circuit.NOT, 10, "n", "x")      // inverting hop
	b.Gate(circuit.BUFFER, 10, "z", "n")   // unate hop
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBacktraceUnateAndParityHops(t *testing.T) {
	c := buildBacktraceCkt(t)
	v := NewVerifier(c, Default())
	sys := constraint.New(c)
	sys.ScheduleAll()
	sys.Fixpoint()

	// Objective z=1 walks: buffer → n(1), NOT → x(0), XOR with both
	// p and q undecided → picks one leg with the residue value, then
	// AND/OR rules down to a primary input.
	z, _ := c.NetByName("z")
	net, val, ok := v.backtrace(sys, z, 1)
	if !ok {
		t.Fatal("backtrace must reach a decision point")
	}
	if !c.Net(net).IsPI && !c.IsStem(net) {
		t.Fatalf("decision point must be a PI or stem, got %s", c.Net(net).Name)
	}
	if val != 0 && val != 1 {
		t.Fatalf("bad value %d", val)
	}
}

func TestBacktraceRespectsDecidedNets(t *testing.T) {
	c := buildBacktraceCkt(t)
	v := NewVerifier(c, Default())
	sys := constraint.New(c)
	sys.ScheduleAll()
	sys.Fixpoint()
	// Decide everything the z-objective needs: the chain dead-ends.
	sys.Mark()
	for _, n := range []string{"a", "b", "c", "d"} {
		id, _ := c.NetByName(n)
		sys.Narrow(id, waveform.SettledTo(1))
	}
	if !sys.Fixpoint() {
		t.Fatal("assignment must be consistent")
	}
	z, _ := c.NetByName("z")
	if _, _, ok := v.backtrace(sys, z, 0); ok {
		t.Fatal("fully decided chain must dead-end (objective already determined)")
	}
}

func TestBacktraceUnreachableObjective(t *testing.T) {
	c := buildBacktraceCkt(t)
	v := NewVerifier(c, Default())
	sys := constraint.New(c)
	sys.ScheduleAll()
	sys.Fixpoint()
	sys.Mark()
	// Remove class 1 from p's domain: objective p=1 is unreachable.
	p, _ := c.NetByName("p")
	sys.Narrow(p, waveform.SettledTo(0))
	sys.Fixpoint()
	if _, _, ok := v.backtrace(sys, p, 1); ok {
		t.Fatal("unreachable objective must fail")
	}
}

func TestBacktraceAndOrPolarity(t *testing.T) {
	c := buildBacktraceCkt(t)
	v := NewVerifier(c, Default())
	sys := constraint.New(c)
	sys.ScheduleAll()
	sys.Fixpoint()

	// p=0 on an AND gate: ONE controlling input suffices (cheapest).
	p, _ := c.NetByName("p")
	net, val, ok := v.backtrace(sys, p, 0)
	if !ok || val != 0 {
		t.Fatalf("AND=0 backtrace: %v %d %v", net, val, ok)
	}
	if name := c.Net(net).Name; name != "a" && name != "b" {
		t.Fatalf("decision must be a or b, got %s", name)
	}
	// p=1 needs all inputs 1; decision still lands on one of them with
	// value 1 (hardest-first).
	_, val, ok = v.backtrace(sys, p, 1)
	if !ok || val != 1 {
		t.Fatalf("AND=1 backtrace: val %d ok %v", val, ok)
	}
	// q=1 on an OR gate: one input at 1.
	q, _ := c.NetByName("q")
	_, val, ok = v.backtrace(sys, q, 1)
	if !ok || val != 1 {
		t.Fatalf("OR=1 backtrace: val %d ok %v", val, ok)
	}
	// q=0 needs all inputs 0.
	_, val, ok = v.backtrace(sys, q, 0)
	if !ok || val != 0 {
		t.Fatalf("OR=0 backtrace: val %d ok %v", val, ok)
	}
}

func TestUnjustifiedDetection(t *testing.T) {
	c := buildBacktraceCkt(t)
	v := NewVerifier(c, Options{}) // no learning: keep domains loose
	sys := constraint.New(c)
	sys.ScheduleAll()
	sys.Fixpoint()
	sys.Mark()
	// Pin p to 0 without pinning its inputs: p is unjustified.
	p, _ := c.NetByName("p")
	sys.Narrow(p, waveform.SettledTo(0))
	sys.Fixpoint()
	found := false
	for _, u := range v.unjustified(sys) {
		if u.net == p && u.val == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("p must be reported unjustified")
	}
	// Now justify it: a = 0 controls the AND.
	a, _ := c.NetByName("a")
	sys.Narrow(a, waveform.SettledTo(0))
	sys.Fixpoint()
	for _, u := range v.unjustified(sys) {
		if u.net == p {
			t.Fatal("p is justified by a=0 now")
		}
	}
}
