package core

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/delay"
	"repro/internal/sim"
	"repro/internal/waveform"
)

// DelayResult is the outcome of an exact floating-delay computation.
type DelayResult struct {
	// Delay is the exact floating-mode delay when Exact, otherwise the
	// best proven (sound) upper bound — the paper's "U" annotation.
	Delay waveform.Time
	// Lower is the largest witnessed delay (== Delay when Exact; −1
	// when no vector was witnessed at all).
	Lower waveform.Time
	// Exact reports whether Delay was certified by a test vector at
	// Delay and a refutation at Delay+1.
	Exact bool
	// Witness realises Lower.
	Witness sim.Vector
	// Checks counts the timing checks performed by the search.
	Checks int
	// Backtracks sums case-analysis backtracks across all checks.
	Backtracks int
}

// ExactFloatingDelay computes the exact floating-mode delay of one
// output by binary search on δ: the check (sink, δ) is monotone in δ
// and each decided check is exact, so the largest violable δ is the
// delay. Abandoned checks never count as refutations — the search keeps
// navigating upward past them so the refuted region still tightens the
// upper bound (the paper's c6288 row: δ+1 refuted, δ abandoned, value
// reported as an upper bound "U"). The result is the sound bracket
// [Lower, Delay], exact iff the two meet.
func (v *Verifier) ExactFloatingDelay(sink circuit.NetID) (*DelayResult, error) {
	upper := v.analysis.Arrival(sink) // topological bound: delay ≤ top_sink
	if upper < 0 {
		return nil, fmt.Errorf("core: net %s has no arrival", v.c.Net(sink).Name)
	}
	res := &DelayResult{Lower: -1}
	cursor := waveform.Time(-1) // search navigation; may pass abandoned points
	for cursor < upper {
		mid := cursor + (upper-cursor+1)/2
		rep := v.Check(sink, mid)
		res.Checks++
		if rep.Backtracks > 0 {
			res.Backtracks += rep.Backtracks
		}
		switch rep.Final {
		case ViolationFound:
			cursor = mid
			res.Lower = mid
			res.Witness = rep.Witness
		case NoViolation:
			upper = mid - 1
		default: // Abandoned: move the cursor, claim nothing
			cursor = mid
		}
	}
	res.Delay = upper
	res.Exact = res.Lower == upper
	return res, nil
}

// CircuitReport aggregates a whole-circuit check at one δ: the paper's
// Table-1 rows check every output and report the strongest verdict.
type CircuitReport struct {
	Delta waveform.Time
	// PerOutput holds one report per primary output, in declaration
	// order.
	PerOutput []*Report
	// BeforeGITD/AfterGITD/AfterStem are NoViolation when EVERY output
	// was refuted at or before the stage (the paper's "N" means no
	// violation on any output), PossibleViolation otherwise.
	BeforeGITD, AfterGITD, AfterStem Result
	// Backtracks sums the case-analysis backtracks over all outputs.
	Backtracks int
	// CaseAnalysis is ViolationFound when any output has a witness,
	// Abandoned when some output was abandoned (and none violated),
	// NoViolation when everything was refuted.
	CaseAnalysis Result
	// Final is the overall verdict.
	Final Result
	// WitnessOutput is the PO index of the first witnessed violation.
	WitnessOutput int
}

// CheckAll runs the timing check (o, δ) for every primary output o and
// aggregates the verdicts as in Table 1.
func (v *Verifier) CheckAll(delta waveform.Time) *CircuitReport {
	cr := &CircuitReport{Delta: delta, WitnessOutput: -1,
		BeforeGITD: NoViolation, AfterGITD: StageSkipped, AfterStem: StageSkipped,
		CaseAnalysis: StageSkipped, Final: NoViolation}
	anyAbandoned := false
	caRan := false
	for i, po := range v.c.PrimaryOutputs() {
		rep := v.Check(po, delta)
		cr.PerOutput = append(cr.PerOutput, rep)
		if rep.BeforeGITD != NoViolation {
			cr.BeforeGITD = PossibleViolation
		}
		cr.AfterGITD = mergeStage(cr.AfterGITD, rep.AfterGITD)
		cr.AfterStem = mergeStage(cr.AfterStem, rep.AfterStem)
		if rep.CaseAnalysis != StageSkipped {
			caRan = true
			if rep.Backtracks > 0 {
				cr.Backtracks += rep.Backtracks
			}
		}
		switch rep.Final {
		case ViolationFound:
			cr.CaseAnalysis = ViolationFound
			cr.Final = ViolationFound
			if cr.WitnessOutput < 0 {
				cr.WitnessOutput = i
			}
			return cr // a single witness decides the circuit check
		case Abandoned:
			anyAbandoned = true
		}
	}
	switch {
	case anyAbandoned:
		cr.CaseAnalysis = Abandoned
		cr.Final = Abandoned
	case caRan:
		cr.CaseAnalysis = NoViolation
	}
	return cr
}

func sortNetsByArrivalDesc(nets []circuit.NetID, a *delay.Analysis) {
	sort.Slice(nets, func(i, j int) bool {
		ai, aj := a.Arrival(nets[i]), a.Arrival(nets[j])
		if ai != aj {
			return ai > aj
		}
		return nets[i] < nets[j]
	})
}

// mergeStage combines per-output stage verdicts: a stage that ran on
// any output dominates StageSkipped, and PossibleViolation dominates
// NoViolation (the paper's "N" means refuted on every output).
func mergeStage(acc, r Result) Result {
	switch {
	case r == StageSkipped:
		return acc
	case acc == StageSkipped:
		return r
	case r == PossibleViolation || acc == PossibleViolation:
		return PossibleViolation
	default:
		return acc
	}
}

// CircuitFloatingDelay computes the exact floating-mode delay over all
// outputs (max of the per-output delays), with the same exactness
// caveat as ExactFloatingDelay.
func (v *Verifier) CircuitFloatingDelay() (*DelayResult, error) {
	best := &DelayResult{Delay: -1, Lower: -1}
	// Search outputs in decreasing topological-arrival order and skip
	// any output whose arrival (a hard upper bound on its delay) cannot
	// beat the best witnessed delay so far — on wide datapaths this
	// prunes most outputs after the slowest one is resolved.
	pos := append([]circuit.NetID(nil), v.c.PrimaryOutputs()...)
	sortNetsByArrivalDesc(pos, v.analysis)
	for _, po := range pos {
		if v.analysis.Arrival(po) <= best.Lower {
			continue
		}
		r, err := v.ExactFloatingDelay(po)
		if err != nil {
			return nil, err
		}
		best.Checks += r.Checks
		best.Backtracks += r.Backtracks
		if r.Lower > best.Lower {
			best.Lower = r.Lower
			best.Witness = r.Witness
		}
		if r.Delay > best.Delay {
			best.Delay = r.Delay
		}
	}
	// The circuit delay is exact when the largest witnessed delay meets
	// the largest sound upper bound — individual outputs may be inexact
	// as long as a slower exact output dominates them.
	best.Exact = best.Lower == best.Delay
	return best, nil
}
