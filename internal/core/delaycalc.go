package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/delay"
	"repro/internal/sim"
	"repro/internal/waveform"
)

// DelayResult is the outcome of an exact floating-delay computation.
type DelayResult struct {
	// Delay is the exact floating-mode delay when Exact, otherwise the
	// best proven (sound) upper bound — the paper's "U" annotation.
	Delay waveform.Time
	// Lower is the largest witnessed delay (== Delay when Exact; −1
	// when no vector was witnessed at all).
	Lower waveform.Time
	// Exact reports whether Delay was certified by a test vector at
	// Delay and a refutation at Delay+1.
	Exact bool
	// Witness realises Lower.
	Witness sim.Vector
	// Checks counts the timing checks performed by the search.
	Checks int
	// Backtracks sums case-analysis backtracks across all checks.
	Backtracks int
}

// ExactFloatingDelay computes the exact floating-mode delay of one
// output.
//
// Deprecated: compatibility wrapper over
// [Verifier.ExactFloatingDelayCtx] with a background context.
func (v *Verifier) ExactFloatingDelay(sink circuit.NetID) (*DelayResult, error) {
	return v.ExactFloatingDelayCtx(context.Background(), sink, Request{})
}

// ExactFloatingDelayCtx computes the exact floating-mode delay of one
// output by binary search on δ: the check (sink, δ) is monotone in δ
// and each decided check is exact, so the largest violable δ is the
// delay. Abandoned checks never count as refutations — the search keeps
// navigating upward past them so the refuted region still tightens the
// upper bound (the paper's c6288 row: δ+1 refuted, δ abandoned, value
// reported as an upper bound "U"). The result is the sound bracket
// [Lower, Delay], exact iff the two meet.
//
// The request's Deadline, Budgets, and Tracer apply to every check of
// the search (Sink and Delta are overwritten). A cancelled check aborts
// the search: the partial bracket so far is returned together with the
// context's error (or context.DeadlineExceeded for a request deadline).
func (v *Verifier) ExactFloatingDelayCtx(ctx context.Context, sink circuit.NetID, req Request) (*DelayResult, error) {
	upper := v.analysis.Arrival(sink) // topological bound: delay ≤ top_sink
	if upper < 0 {
		return nil, fmt.Errorf("core: net %s has no arrival", v.c.Net(sink).Name)
	}
	res := &DelayResult{Lower: -1}
	cursor := waveform.Time(-1) // search navigation; may pass abandoned points
	for cursor < upper {
		mid := waveform.MidpointCeil(cursor, upper)
		req.Sink, req.Delta = sink, mid
		rep := v.Run(ctx, req)
		res.Checks++
		if rep.Backtracks > 0 {
			res.Backtracks += rep.Backtracks
		}
		switch rep.Final {
		case ViolationFound:
			cursor = mid
			res.Lower = mid
			res.Witness = rep.Witness
		case NoViolation:
			upper = mid.Sub(1)
		case Cancelled:
			res.Delay = upper
			res.Exact = false
			return res, cancelErr(ctx)
		default: // Abandoned: move the cursor, claim nothing
			cursor = mid
		}
	}
	res.Delay = upper
	res.Exact = res.Lower == upper
	return res, nil
}

// cancelErr maps a cancelled check to the caller-visible error: the
// context's own error when it fired, context.DeadlineExceeded when the
// request deadline (invisible to ctx) did.
func cancelErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.DeadlineExceeded
}

// CircuitReport aggregates a whole-circuit check at one δ: the paper's
// Table-1 rows check every output and report the strongest verdict.
type CircuitReport struct {
	Delta waveform.Time
	// PerOutput holds one report per primary output, in declaration
	// order.
	PerOutput []*Report
	// BeforeGITD/AfterGITD/AfterStem are NoViolation when EVERY output
	// was refuted at or before the stage (the paper's "N" means no
	// violation on any output), PossibleViolation otherwise.
	BeforeGITD, AfterGITD, AfterStem Result
	// Backtracks sums the case-analysis backtracks over all outputs.
	Backtracks int
	// CaseAnalysis is ViolationFound when any output has a witness,
	// Abandoned when some output was abandoned (and none violated),
	// NoViolation when everything was refuted.
	CaseAnalysis Result
	// Final is the overall verdict (Cancelled when some check was
	// interrupted and no violation decided the sweep first).
	Final Result
	// WitnessOutput is the PO index of the first witnessed violation.
	WitnessOutput int

	// Propagations, Dominators, and DominatorRounds sum the per-output
	// report counters, so circuit-level reports account for all work
	// done (not just backtracks).
	Propagations    int64
	Dominators      int
	DominatorRounds int
}

// CheckAll runs the timing check (o, δ) for every primary output o and
// aggregates the verdicts as in Table 1.
//
// Deprecated: compatibility wrapper over [Verifier.RunAll] with
// Workers == 1. New code should call RunAll.
func (v *Verifier) CheckAll(delta waveform.Time) *CircuitReport {
	return v.RunAll(context.Background(), Request{Delta: delta, Workers: 1})
}

func sortNetsByArrivalDesc(nets []circuit.NetID, a *delay.Analysis) {
	sort.Slice(nets, func(i, j int) bool {
		ai, aj := a.Arrival(nets[i]), a.Arrival(nets[j])
		if ai != aj {
			return ai > aj
		}
		return nets[i] < nets[j]
	})
}

// mergeStage combines per-output stage verdicts: a stage that ran on
// any output dominates StageSkipped, and PossibleViolation dominates
// NoViolation (the paper's "N" means refuted on every output).
func mergeStage(acc, r Result) Result {
	switch {
	case r == StageSkipped:
		return acc
	case acc == StageSkipped:
		return r
	case r == PossibleViolation || acc == PossibleViolation:
		return PossibleViolation
	default:
		return acc
	}
}

// CircuitFloatingDelay computes the exact floating-mode delay over all
// outputs (max of the per-output delays), with the same exactness
// caveat as ExactFloatingDelay.
//
// Deprecated: compatibility wrapper over
// [Verifier.CircuitFloatingDelayCtx] with a background context.
func (v *Verifier) CircuitFloatingDelay() (*DelayResult, error) {
	return v.CircuitFloatingDelayCtx(context.Background(), Request{})
}

// CircuitFloatingDelayCtx is CircuitFloatingDelay under a context: the
// request's Deadline, Budgets, and Tracer apply to every check, and a
// cancellation aborts the sweep with the partial result and an error.
func (v *Verifier) CircuitFloatingDelayCtx(ctx context.Context, req Request) (*DelayResult, error) {
	best := &DelayResult{Delay: -1, Lower: -1}
	// Search outputs in decreasing topological-arrival order and skip
	// any output whose arrival (a hard upper bound on its delay) cannot
	// beat the best witnessed delay so far — on wide datapaths this
	// prunes most outputs after the slowest one is resolved.
	pos := append([]circuit.NetID(nil), v.c.PrimaryOutputs()...)
	sortNetsByArrivalDesc(pos, v.analysis)
	for _, po := range pos {
		if v.analysis.Arrival(po) <= best.Lower {
			continue
		}
		r, err := v.ExactFloatingDelayCtx(ctx, po, req)
		if err != nil {
			// Keep the bracket established so far: it is a sound partial
			// answer (Lower is witnessed, Delay bounds the outputs already
			// searched) even though the sweep is incomplete.
			if r != nil {
				best.Checks += r.Checks
				best.Backtracks += r.Backtracks
				if r.Lower > best.Lower {
					best.Lower = r.Lower
					best.Witness = r.Witness
				}
				if r.Delay > best.Delay {
					best.Delay = r.Delay
				}
			}
			best.Exact = false
			return best, err
		}
		best.Checks += r.Checks
		best.Backtracks += r.Backtracks
		if r.Lower > best.Lower {
			best.Lower = r.Lower
			best.Witness = r.Witness
		}
		if r.Delay > best.Delay {
			best.Delay = r.Delay
		}
	}
	// The circuit delay is exact when the largest witnessed delay meets
	// the largest sound upper bound — individual outputs may be inexact
	// as long as a slower exact output dominates them.
	best.Exact = best.Lower == best.Delay
	return best, nil
}
