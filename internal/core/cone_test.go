package core

import (
	"context"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/waveform"
)

// conePair builds two verifiers over one shared Prepared: one solving
// each check on the sink's fan-in cone, one on the whole circuit.
// Sharing the precompute is the production configuration — the
// differential below must hold with the caches in play.
func conePair(c *circuit.Circuit, budget int) (cone, whole *Verifier) {
	prep := Prepare(c)
	opts := Default()
	opts.MaxBacktracks = budget
	cone = prep.NewVerifier(opts)
	opts.UseConeSlicing = false
	whole = prep.NewVerifier(opts)
	return cone, whole
}

// checkWitness validates a violation witness against the ORIGINAL
// circuit: right vector width (cone witnesses are expanded back to the
// full primary-input order) and a simulated settle time that both
// matches the report and actually realises the violation.
func checkWitness(t *testing.T, c *circuit.Circuit, label string, rep *Report) {
	t.Helper()
	if rep.Final != ViolationFound {
		return
	}
	if len(rep.Witness) != len(c.PrimaryInputs()) {
		t.Fatalf("%s: witness width %d, circuit has %d PIs", label, len(rep.Witness), len(c.PrimaryInputs()))
	}
	res, err := sim.Run(c, rep.Witness)
	if err != nil {
		t.Fatalf("%s: witness does not simulate: %v", label, err)
	}
	if got := res.OutputSettle(rep.Sink); got != rep.WitnessSettle {
		t.Fatalf("%s: reported settle %s, simulation says %s", label, rep.WitnessSettle, got)
	}
	if !res.Violates(rep.Sink, rep.Delta) {
		t.Fatalf("%s: witness settles at %s, no violation at δ=%s", label, res.OutputSettle(rep.Sink), rep.Delta)
	}
}

// diffReports asserts cone and whole-circuit runs of the same check
// agree on everything observable: the sink (in original ids), every
// stage verdict, the final verdict, and — when a vector was found —
// that both witnesses are valid on the original circuit. Witness BYTES
// are not compared (two distinct valid vectors are both correct), and
// neither are backtrack or propagation counts (the cone does strictly
// less work).
func diffReports(t *testing.T, c *circuit.Circuit, label string, cone, whole *Report) {
	t.Helper()
	if cone.Sink != whole.Sink || cone.Delta != whole.Delta {
		t.Fatalf("%s: check identity differs: (%v,%s) vs (%v,%s)",
			label, cone.Sink, cone.Delta, whole.Sink, whole.Delta)
	}
	if cone.Final != whole.Final {
		t.Fatalf("%s: final verdict differs: cone %s, whole %s", label, cone.Final, whole.Final)
	}
	if cone.BeforeGITD != whole.BeforeGITD || cone.AfterGITD != whole.AfterGITD ||
		cone.AfterStem != whole.AfterStem || cone.CaseAnalysis != whole.CaseAnalysis {
		t.Fatalf("%s: stage outcomes differ:\ncone  %s %s %s %s\nwhole %s %s %s %s",
			label,
			cone.BeforeGITD, cone.AfterGITD, cone.AfterStem, cone.CaseAnalysis,
			whole.BeforeGITD, whole.AfterGITD, whole.AfterStem, whole.CaseAnalysis)
	}
	checkWitness(t, c, label+" (cone)", cone)
	checkWitness(t, c, label+" (whole)", whole)
}

// TestConeDifferentialSuite runs every primary output of every suite
// circuit at several δ through both configurations and requires
// identical verdicts and stage outcomes. δ = top+1 must additionally
// be NoViolation everywhere (topological delay is a sound bound).
func TestConeDifferentialSuite(t *testing.T) {
	ctx := context.Background()
	for _, e := range gen.SubstituteSuite() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			budget := 50000
			if e.Name == "c6288" {
				budget = 500 // the paper abandons c6288-class searches too
			}
			cv, wv := conePair(e.Circuit, budget)
			top := cv.Topological()
			deltas := []waveform.Time{top.Add(1), top}
			if !testing.Short() {
				deltas = append(deltas, top*3/4)
			}
			for _, d := range deltas {
				for _, po := range e.Circuit.PrimaryOutputs() {
					req := Request{Sink: po, Delta: d}
					a := cv.Run(ctx, req)
					b := wv.Run(ctx, req)
					label := e.Name + " " + e.Circuit.Net(po).Name + " δ=" + d.String()
					diffReports(t, e.Circuit, label, a, b)
					if d == top.Add(1) && a.Final != NoViolation {
						t.Fatalf("%s: beyond-top check must refute, got %s", label, a.Final)
					}
				}
			}
		})
	}
}

// TestConeDifferentialParallelRunAll exercises the concurrent cone
// cache: a parallel cone-sliced sweep against a serial whole-circuit
// sweep must produce the same aggregate and the same per-output
// verdicts. Run under -race this also checks the lazy per-sink cone
// construction for data races.
func TestConeDifferentialParallelRunAll(t *testing.T) {
	ctx := context.Background()
	c := gen.Industrial(3, 24, 10)
	cv, wv := conePair(c, 50000)
	top := cv.Topological()
	for _, d := range []waveform.Time{top.Add(1), top} {
		par := cv.RunAll(ctx, Request{Delta: d, Workers: 4})
		ser := wv.RunAll(ctx, Request{Delta: d, Workers: 1})
		if par.Final != ser.Final || par.BeforeGITD != ser.BeforeGITD ||
			par.AfterGITD != ser.AfterGITD || par.AfterStem != ser.AfterStem ||
			par.CaseAnalysis != ser.CaseAnalysis {
			t.Fatalf("δ=%s: aggregate differs: cone/parallel %s vs whole/serial %s", d, par.Final, ser.Final)
		}
		for i := range ser.PerOutput {
			diffReports(t, c, "industrial PO "+c.Net(c.PrimaryOutputs()[i]).Name+" δ="+d.String(),
				par.PerOutput[i], ser.PerOutput[i])
		}
	}
}

// TestConeDelayBracketDifferential compares the binary-search delay
// calculators — per-output exact search and the circuit-level bracket,
// both of which issue many checks through Run — between cone and
// whole-circuit solving.
func TestConeDelayBracketDifferential(t *testing.T) {
	ctx := context.Background()
	for _, c := range []*circuit.Circuit{
		gen.Industrial(1, 8, 10),
		gen.Industrial(5, 12, 7),
	} {
		cv, wv := conePair(c, 50000)
		a, err := cv.CircuitFloatingDelayCtx(ctx, Request{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := wv.CircuitFloatingDelayCtx(ctx, Request{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Delay != b.Delay || a.Exact != b.Exact || a.Lower != b.Lower {
			t.Fatalf("%s: circuit bracket differs: cone [%s,%s] exact=%v, whole [%s,%s] exact=%v",
				c.Name, a.Lower, a.Delay, a.Exact, b.Lower, b.Delay, b.Exact)
		}
		for _, po := range c.PrimaryOutputs() {
			ra, err := cv.ExactFloatingDelayCtx(ctx, po, Request{})
			if err != nil {
				t.Fatal(err)
			}
			rb, err := wv.ExactFloatingDelayCtx(ctx, po, Request{})
			if err != nil {
				t.Fatal(err)
			}
			if ra.Delay != rb.Delay || ra.Exact != rb.Exact {
				t.Fatalf("%s %s: exact delay differs: cone %s (exact=%v), whole %s (exact=%v)",
					c.Name, c.Net(po).Name, ra.Delay, ra.Exact, rb.Delay, rb.Exact)
			}
			if ra.Exact && len(ra.Witness) > 0 {
				res, err := sim.Run(c, ra.Witness)
				if err != nil {
					t.Fatal(err)
				}
				if res.OutputSettle(po) != ra.Delay {
					t.Fatalf("%s %s: cone delay witness settles at %s, want %s",
						c.Name, c.Net(po).Name, res.OutputSettle(po), ra.Delay)
				}
			}
		}
	}
}

// FuzzConeEquivalence throws random circuits at both configurations.
// Random netlists can contain structurally constant nets (duplicate
// XOR inputs), which makes the projected learning table's folded
// constants load-bearing. Only the FINAL verdict and witness validity
// are asserted here: intermediate stage outcomes are allowed to differ
// on adversarial constant-bearing circuits (the cone cannot see
// implications flowing through gates outside it), final verdicts are
// not — case analysis is complete and witnesses are sim-certified.
func FuzzConeEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(24), int64(35))
	f.Add(int64(7), uint8(6), uint8(48), int64(20))
	f.Add(int64(42), uint8(3), uint8(12), int64(50))
	f.Add(int64(1234), uint8(0), uint8(0), int64(0))
	f.Fuzz(func(t *testing.T, seed int64, npi, ngates uint8, delta int64) {
		c := gen.Random(seed, 2+int(npi%8), 4+int(ngates%60), 10)
		cv, wv := conePair(c, 5000)
		top := cv.Topological()
		if delta < 0 {
			delta = -delta
		}
		d := waveform.Time(delta % (int64(top) + 3)) //lttalint:ignore timesat fuzz input reduced modulo the finite topological delay; modulo is outside the Time API
		ctx := context.Background()
		for _, po := range c.PrimaryOutputs() {
			req := Request{Sink: po, Delta: d}
			a := cv.Run(ctx, req)
			b := wv.Run(ctx, req)
			if a.Final != b.Final {
				t.Fatalf("seed=%d PO %s δ=%s: cone %s, whole %s",
					seed, c.Net(po).Name, d, a.Final, b.Final)
			}
			checkWitness(t, c, "fuzz cone", a)
			checkWitness(t, c, "fuzz whole", b)
		}
	})
}
