package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sim"
)

// TestStaticDominatorOption: enabling Lemma-3 static-dominator
// narrowing must preserve exactness and never weaken verdicts.
func TestStaticDominatorOption(t *testing.T) {
	opts := Default()
	opts.UseStaticDominators = true
	for seed := int64(0); seed < 15; seed++ {
		c := gen.Random(seed+210, 5, 12, 4)
		po := c.PrimaryOutputs()[0]
		want, _, err := sim.FloatingDelayExhaustive(c, po)
		if err != nil {
			t.Fatal(err)
		}
		v := NewVerifier(c, opts)
		got, err := v.ExactFloatingDelay(po)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Exact || got.Delay != want {
			t.Fatalf("seed %d: engine %s (exact=%v), oracle %s", seed, got.Delay, got.Exact, want)
		}
	}
}

// TestStaticDominatorsAloneRefuteChain: on a pure chain the static
// dominators already pin every net, so the Lemma-3 pre-pass plus the
// plain fixpoint refutes just past the exact delay without the dynamic
// machinery.
func TestStaticDominatorsAloneRefuteChain(t *testing.T) {
	c := gen.CarrySkipAdder(8, 4, 10)
	cout, _ := c.NetByName("cout")
	ref := NewVerifier(c, Default())
	res, err := ref.ExactFloatingDelay(cout)
	if err != nil || !res.Exact {
		t.Fatalf("reference: %v %+v", err, res)
	}
	withStatic := NewVerifier(c, Options{UseStaticDominators: true, MaxBacktracks: 1 << 20})
	rep := withStatic.Check(cout, res.Delay.Add(1))
	if rep.Final != NoViolation {
		t.Fatalf("static-dominator config must still refute exactly, got %s", rep.Final)
	}
	rep = withStatic.Check(cout, res.Delay)
	if rep.Final != ViolationFound {
		t.Fatalf("δ=exact must still be witnessed, got %s", rep.Final)
	}
}
