package core

import (
	"runtime"
	"sync"

	"repro/internal/waveform"
)

// CheckAllParallel runs the per-output timing checks of CheckAll
// concurrently (the verifier's preprocessing is read-only and every
// check owns its constraint system, so checks are independent). The
// aggregate is deterministic: verdicts are combined in primary-output
// order regardless of completion order, and the witness output is the
// first PO index with a violation. Unlike CheckAll it does not stop at
// the first witness, so it does strictly more work on violating checks
// but parallelises refutation sweeps — the common case when scanning a
// circuit at a safe δ.
func (v *Verifier) CheckAllParallel(delta waveform.Time, workers int) *CircuitReport {
	pos := v.c.PrimaryOutputs()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pos) {
		workers = len(pos)
	}
	if workers <= 1 {
		return v.CheckAll(delta)
	}
	reports := make([]*Report, len(pos))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				reports[i] = v.Check(pos[i], delta)
			}
		}()
	}
	for i := range pos {
		next <- i
	}
	close(next)
	wg.Wait()

	cr := &CircuitReport{Delta: delta, WitnessOutput: -1,
		BeforeGITD: NoViolation, AfterGITD: StageSkipped, AfterStem: StageSkipped,
		CaseAnalysis: StageSkipped, Final: NoViolation}
	anyAbandoned := false
	caRan := false
	for i, rep := range reports {
		cr.PerOutput = append(cr.PerOutput, rep)
		if rep.BeforeGITD != NoViolation {
			cr.BeforeGITD = PossibleViolation
		}
		cr.AfterGITD = mergeStage(cr.AfterGITD, rep.AfterGITD)
		cr.AfterStem = mergeStage(cr.AfterStem, rep.AfterStem)
		if rep.CaseAnalysis != StageSkipped {
			caRan = true
			if rep.Backtracks > 0 {
				cr.Backtracks += rep.Backtracks
			}
		}
		switch rep.Final {
		case ViolationFound:
			if cr.WitnessOutput < 0 {
				cr.WitnessOutput = i
				cr.CaseAnalysis = ViolationFound
				cr.Final = ViolationFound
			}
		case Abandoned:
			anyAbandoned = true
		}
	}
	if cr.Final != ViolationFound {
		switch {
		case anyAbandoned:
			cr.CaseAnalysis = Abandoned
			cr.Final = Abandoned
		case caRan:
			cr.CaseAnalysis = NoViolation
		}
	}
	return cr
}
