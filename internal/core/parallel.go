package core

import (
	"context"

	"repro/internal/waveform"
)

// CheckAllParallel runs the per-output timing checks of CheckAll
// concurrently (the verifier's preprocessing is read-only and every
// check owns its constraint system, so checks are independent). The
// aggregate is deterministic and identical to the serial CheckAll:
// verdicts combine in primary-output order regardless of completion
// order, and once a witness is found the checks on later outputs are
// cancelled and discarded — exactly the checks the serial sweep never
// starts.
//
// Deprecated: compatibility wrapper over [Verifier.RunAll] with the
// worker count in Request.Workers (0 = GOMAXPROCS). New code should
// call RunAll, which additionally supports cancellation, deadlines,
// budgets, tracing, and per-check pprof labels.
func (v *Verifier) CheckAllParallel(delta waveform.Time, workers int) *CircuitReport {
	return v.RunAll(context.Background(), Request{Delta: delta, Workers: workers})
}
