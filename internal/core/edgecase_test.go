package core

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
	"repro/internal/waveform"
)

// Edge cases through the whole engine: DELAY elements, zero-delay
// gates, degenerate fan-in, outputs fed directly by inputs.

func exactMatchesOracle(t *testing.T, c *circuit.Circuit) {
	t.Helper()
	v := NewVerifier(c, Default())
	for _, po := range c.PrimaryOutputs() {
		want, _, err := sim.FloatingDelayExhaustive(c, po)
		if err != nil {
			t.Fatal(err)
		}
		got, err := v.ExactFloatingDelay(po)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Exact || got.Delay != want {
			t.Fatalf("output %s: engine %s (exact=%v), oracle %s",
				c.Net(po).Name, got.Delay, got.Exact, want)
		}
	}
}

func TestDelayElements(t *testing.T) {
	// The paper's DELAY elements: pure transport stages on a path.
	b := circuit.NewBuilder("delays")
	b.Input("a")
	b.Input("b")
	b.Gate(circuit.DELAY, 25, "d1", "a")
	b.Gate(circuit.DELAY, 17, "d2", "d1")
	b.Gate(circuit.AND, 3, "z", "d2", "b")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	exactMatchesOracle(t, c)
	v := NewVerifier(c, Default())
	if v.Topological() != 45 {
		t.Fatalf("top = %s", v.Topological())
	}
}

func TestZeroDelayGates(t *testing.T) {
	b := circuit.NewBuilder("zero")
	b.Input("a")
	b.Input("b")
	b.Gate(circuit.AND, 0, "x", "a", "b")
	b.Gate(circuit.OR, 0, "y", "x", "a")
	b.Gate(circuit.NOT, 10, "z", "y")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	exactMatchesOracle(t, c)
}

func TestDegenerateFanin(t *testing.T) {
	// 1-input AND/NOR degenerate to buffer/inverter semantics.
	b := circuit.NewBuilder("degen")
	b.Input("a")
	b.Gate(circuit.AND, 5, "x", "a")
	b.Gate(circuit.NOR, 5, "y", "x")
	b.Gate(circuit.XOR, 5, "z", "y")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	exactMatchesOracle(t, c)
	vals, err := sim.Logic(c, sim.Vector{1})
	if err != nil {
		t.Fatal(err)
	}
	z, _ := c.NetByName("z")
	if vals[z] != 0 {
		t.Fatalf("z = %d, want NOT(1) propagated", vals[z])
	}
}

func TestInputIsOutput(t *testing.T) {
	b := circuit.NewBuilder("thru")
	b.Input("a")
	b.Output("a")
	b.Input("b")
	b.Gate(circuit.NOT, 10, "z", "b")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(c, Default())
	a, _ := c.NetByName("a")
	// a's floating delay is 0: it can differ from its final value at
	// t = 0 exactly, never later.
	res, err := v.ExactFloatingDelay(a)
	if err != nil || !res.Exact || res.Delay != 0 {
		t.Fatalf("PI-as-PO delay: %+v (%v)", res, err)
	}
	rep := v.Check(a, 1)
	if rep.Final != NoViolation {
		t.Fatalf("check (a, 1) = %s, want N", rep.Final)
	}
}

func TestWideGate(t *testing.T) {
	// A 9-input NOR (ISCAS circuits have such gates) through the
	// symmetric projection fast path.
	b := circuit.NewBuilder("wide")
	ins := make([]string, 9)
	for i := range ins {
		ins[i] = string(rune('a' + i))
		b.Input(ins[i])
	}
	b.Gate(circuit.NOR, 10, "z", ins...)
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	exactMatchesOracle(t, c)
}

func TestHugeDeltaAndNegativeDelta(t *testing.T) {
	b := circuit.NewBuilder("bounds")
	b.Input("a")
	b.Gate(circuit.NOT, 10, "z", "a")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(c, Default())
	z, _ := c.NetByName("z")
	if rep := v.Check(z, waveform.Time(1<<40)); rep.Final != NoViolation {
		t.Fatalf("astronomical δ must be refuted, got %s", rep.Final)
	}
	// δ ≤ 0 is always violable: the output can differ from its final
	// value at t = 0 (unknown initial state).
	if rep := v.Check(z, 0); rep.Final != ViolationFound {
		t.Fatalf("δ=0 must be witnessed, got %s", rep.Final)
	}
	if rep := v.Check(z, -5); rep.Final != ViolationFound {
		t.Fatalf("negative δ must be witnessed, got %s", rep.Final)
	}
}
