package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/waveform"
)

func TestCheckAllParallelMatchesSerialOnRefutation(t *testing.T) {
	c := gen.C17(10)
	v := NewVerifier(c, Default())
	for _, delta := range []waveform.Time{31, 40} {
		serial := v.CheckAll(delta)
		par := v.CheckAllParallel(delta, 4)
		if serial.Final != par.Final || serial.BeforeGITD != par.BeforeGITD {
			t.Fatalf("δ=%s: serial %s/%s vs parallel %s/%s",
				delta, serial.Final, serial.BeforeGITD, par.Final, par.BeforeGITD)
		}
	}
}

func TestCheckAllParallelWitnessDeterministic(t *testing.T) {
	c := gen.C17(10)
	v := NewVerifier(c, Default())
	var first *CircuitReport
	for i := 0; i < 5; i++ {
		cr := v.CheckAllParallel(30, 3)
		if cr.Final != ViolationFound {
			t.Fatalf("δ=30 must be witnessed, got %s", cr.Final)
		}
		if first == nil {
			first = cr
			continue
		}
		if cr.WitnessOutput != first.WitnessOutput {
			t.Fatalf("witness output nondeterministic: %d vs %d", cr.WitnessOutput, first.WitnessOutput)
		}
	}
	// The witness is the first violating PO index, matching serial.
	serial := v.CheckAll(30)
	if serial.WitnessOutput != first.WitnessOutput {
		t.Fatalf("parallel witness %d differs from serial %d", first.WitnessOutput, serial.WitnessOutput)
	}
}

func TestCheckAllParallelSingleWorkerFallsBack(t *testing.T) {
	c := gen.Hrapcenko(10)
	v := NewVerifier(c, Default())
	cr := v.CheckAllParallel(61, 1)
	if cr.Final != NoViolation {
		t.Fatalf("got %s", cr.Final)
	}
}

func TestCheckAllParallelOnSuiteCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a second")
	}
	for _, e := range gen.SubstituteSuite() {
		if e.Name != "c5315" {
			continue
		}
		v := NewVerifier(e.Circuit, Default())
		top := v.Topological()
		serial := v.CheckAll(top.Add(1))
		par := v.CheckAllParallel(top.Add(1), 0)
		if serial.Final != par.Final || serial.Final != NoViolation {
			t.Fatalf("beyond-top check differs: %s vs %s", serial.Final, par.Final)
		}
	}
}
