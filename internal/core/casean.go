package core

import (
	"sort"

	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/dom"
	"repro/internal/sim"
	"repro/internal/waveform"
)

// This file implements the case analysis of Section 5: a FAN-derived
// branch-and-narrow search that splits net domains one class at a time.
// Objectives (k, n0(k), n1(k)) carry path-delay weights ("a path to s
// of delay n0 is potentially enabled by setting net k to 0"); the
// backtrace takes the largest incoming weight at fanout joins (the
// paper's max rule) and SCOAP controllability breaks ties. Decisions
// follow the paper's three phases: (1) inside consecutive
// dynamic-dominator segments, (2) on the whole circuit, (3) directly on
// the primary inputs. Because every candidate vector is certified
// against the floating-mode simulator before being reported, and the
// narrowing layers are sound, the search verdicts are exact; only the
// decision *order* is heuristic.

// decision is one entry of the decision stack.
type decision struct {
	net     circuit.NetID
	val     int
	flipped bool
}

// caseAnalysis searches for a test vector violating (sink, δ), returns
// NoViolation when the search space is exhausted, Abandoned past the
// backtrack (or propagation) budget, or Cancelled when the run's
// context or deadline fires. rep.Backtracks and rep.Witness are filled
// in.
func (v *Verifier) caseAnalysis(rs *runState, sys *constraint.System, sink circuit.NetID, delta waveform.Time, rep *Report) Result {
	var stack []decision
	rep.Backtracks = 0

	// unwind closes every decision level still open. Exhausted searches
	// unwind through backtrack() naturally, but witness/abandon/cancel
	// exits used to return with the whole stack's marks open — a trail
	// leak now that warm-start keeps the system alive across checks.
	unwind := func() {
		for range stack {
			sys.Undo()
		}
		stack = stack[:0]
	}

	backtrack := func() bool {
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			sys.Undo()
			if !top.flipped {
				top.flipped = true
				top.val = 1 - top.val
				sys.Mark()
				sys.Narrow(top.net, waveform.SettledTo(top.val))
				return true
			}
			stack = stack[:len(stack)-1]
		}
		return false
	}

	// conflict records one refuted branch and moves to the next, or
	// reports the search exhausted/over budget.
	conflict := func() (Result, bool) {
		rep.Backtracks++
		if rs.tracer != nil {
			rs.tracer.Backtrack(rep.Backtracks)
		}
		if rs.maxBack > 0 && rep.Backtracks > rs.maxBack {
			return Abandoned, true
		}
		if !backtrack() {
			return NoViolation, true
		}
		return 0, false
	}

	for {
		switch res := v.evaluate(rs, sys, sink, delta, rep); res {
		case Cancelled, Abandoned:
			unwind()
			return res
		case NoViolation:
			if res, done := conflict(); done {
				unwind()
				return res
			}
			continue
		}
		// Consistent at fixpoint: decide the next net.
		net, val, ok := v.pickDecision(sys, sink, delta)
		if !ok {
			// Every primary input is classed: candidate vector.
			vec := v.extractVector(sys)
			r, err := sim.Run(v.c, vec)
			if err == nil && r.Settle[sink] >= delta {
				rep.Witness = vec
				rep.WitnessSettle = r.Settle[sink]
				unwind() // after extraction: the vector needs the decided domains
				return ViolationFound
			}
			// Local consistency was too optimistic: treat as conflict.
			if res, done := conflict(); done {
				unwind()
				return res
			}
			continue
		}
		sys.Mark()
		stack = append(stack, decision{net: net, val: val})
		rep.Stats.Decisions++
		if rs.tracer != nil {
			rs.tracer.Decision(len(stack), net, val)
		}
		sys.Narrow(net, waveform.SettledTo(val))
	}
}

// extractVector reads the decided class of every primary input.
func (v *Verifier) extractVector(sys *constraint.System) sim.Vector {
	pis := v.c.PrimaryInputs()
	vec := make(sim.Vector, len(pis))
	for i, pi := range pis {
		if val, ok := sys.Domain(pi).KnownValue(); ok {
			vec[i] = val
		} else {
			vec[i] = 0 // unreachable when pickDecision reports done
		}
	}
	return vec
}

// objective is a net-value goal with a path-delay weight.
type objective struct {
	net    circuit.NetID
	val    int
	weight waveform.Time
	seg    int // dominator segment index (phase 1 ordering)
}

// pickDecision selects the next decision net and class, following the
// paper's phase structure. It returns ok = false when all primary
// inputs are already single-class.
func (v *Verifier) pickDecision(sys *constraint.System, sink circuit.NetID, delta waveform.Time) (circuit.NetID, int, bool) {
	carrier, dist := dom.DynamicCarriers(sys, sink, delta)

	// Phase 1: sensitising objectives on the non-carrier inputs of
	// gates in the dynamic-carrier circuit, dominator segment by
	// dominator segment, longest potential path first.
	for _, o := range v.initialObjectives(sys, sink, delta, carrier, dist) {
		if n, val, ok := v.backtrace(sys, o.net, o.val); ok {
			return n, val, true
		}
	}

	// Phase 2: decisions on the whole circuit — undecided reconvergent
	// fanout stems inside the carrier circuit, deepest first (the
	// profound-effect nets the paper's modified FAN splits on).
	var stems []objective
	for _, stem := range v.stems {
		if !carrier[stem] {
			continue
		}
		d := sys.Domain(stem)
		if _, known := d.KnownValue(); known {
			continue
		}
		stems = append(stems, objective{net: stem, weight: dist[stem]})
	}
	sort.Slice(stems, func(i, j int) bool {
		if stems[i].weight != stems[j].weight {
			return stems[i].weight > stems[j].weight
		}
		return stems[i].net < stems[j].net
	})
	for _, o := range stems {
		d := sys.Domain(o.net)
		val := 0
		if d.W0.IsEmpty() || (!d.W1.IsEmpty() && v.cc.Cost(o.net, 1) < v.cc.Cost(o.net, 0)) {
			val = 1
		}
		return o.net, val, true
	}

	// Phase 3: complete backtrace from unjustified nets — outputs whose
	// class is decided but not yet justified by their inputs — down to
	// primary inputs; then any leftover undecided primary input,
	// cheapest controllability first.
	for _, u := range v.unjustified(sys) {
		if n, val, ok := v.backtrace(sys, u.net, u.val); ok {
			return n, val, true
		}
	}
	type piCand struct {
		n    circuit.NetID
		cost int64
	}
	var cands []piCand
	for _, pi := range v.c.PrimaryInputs() {
		if _, known := sys.Domain(pi).KnownValue(); !known {
			cost := v.cc.Cost(pi, 0)
			if c1 := v.cc.Cost(pi, 1); c1 < cost {
				cost = c1
			}
			cands = append(cands, piCand{pi, cost})
		}
	}
	if len(cands) == 0 {
		return circuit.InvalidNet, 0, false
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].n < cands[j].n
	})
	pi := cands[0].n
	// Prefer the class that keeps the carrier paths sensitised: choose
	// the one whose wave is non-empty with the later bound.
	d := sys.Domain(pi)
	val := 0
	if d.W0.IsEmpty() || (!d.W1.IsEmpty() && v.cc.Cost(pi, 1) < v.cc.Cost(pi, 0)) {
		val = 1
	}
	return pi, val, true
}

// unjustifiedGoal is a decided-but-unjustified gate output with its
// decided class, used as a Phase-3 backtrace objective.
type unjustifiedGoal struct {
	net circuit.NetID
	val int
}

// unjustified finds gate outputs whose domain is restricted to one
// class while the gate's inputs do not yet force that class — the
// paper's Phase-3 sources. A gate output with class v is justified when
// either some input is pinned to a controlling value producing v, or
// every input is pinned non-controlling and v is the resulting value
// (with the parity/unate analogues).
func (v *Verifier) unjustified(sys *constraint.System) []unjustifiedGoal {
	var out []unjustifiedGoal
	for i := 0; i < v.c.NumGates(); i++ {
		g := v.c.Gate(circuit.GateID(i))
		val, known := sys.Domain(g.Output).KnownValue()
		if !known {
			continue
		}
		if v.justified(sys, g, val) {
			continue
		}
		out = append(out, unjustifiedGoal{net: g.Output, val: val})
	}
	// Deepest first: justification decisions near the output constrain
	// the most.
	sort.Slice(out, func(i, j int) bool {
		li, lj := v.c.Level(out[i].net), v.c.Level(out[j].net)
		if li != lj {
			return li > lj
		}
		return out[i].net < out[j].net
	})
	return out
}

// justified reports whether the decided output class of gate g is
// already forced by its inputs' decided classes.
func (v *Verifier) justified(sys *constraint.System, g *circuit.Gate, val int) bool {
	switch {
	case g.Type.Unate():
		_, known := sys.Domain(g.Inputs[0]).KnownValue()
		return known
	case g.Type.Parity():
		for _, x := range g.Inputs {
			if _, known := sys.Domain(x).KnownValue(); !known {
				return false
			}
		}
		return true
	default:
		ctrl, _ := g.Type.HasControlling()
		controlled := ctrl
		if g.Type.Inverting() {
			controlled = 1 - ctrl
		}
		if val == controlled {
			// Justified iff some input is pinned controlling.
			for _, x := range g.Inputs {
				if xv, known := sys.Domain(x).KnownValue(); known && xv == ctrl {
					return true
				}
			}
			return false
		}
		// Non-controlled output: justified iff all inputs pinned
		// non-controlling.
		for _, x := range g.Inputs {
			if xv, known := sys.Domain(x).KnownValue(); !known || xv == ctrl {
				return false
			}
		}
		return true
	}
}

// initialObjectives computes the paper's initial objectives: inputs of
// gates of the dynamic-carrier circuit Ψ that are not themselves
// dynamic carriers should take the non-controlling value of the gate
// they feed (sensitising the paths inside Ψ). Objectives are weighted
// by the dynamic distance of the carrier output (favouring long paths)
// and grouped by dominator segment.
func (v *Verifier) initialObjectives(sys *constraint.System, sink circuit.NetID, delta waveform.Time, carrier []bool, dist []waveform.Time) []objective {
	var doms dom.Dominators
	if v.opts.UseDominators {
		doms = dom.FromCarriers(v.c, carrier, dist, sink)
	}
	segOf := func(n circuit.NetID) int {
		// Segment i covers nets at levels between dominator i+1
		// (exclusive) and dominator i (inclusive).
		if len(doms.Nets) == 0 {
			return 0
		}
		lvl := v.c.Level(n)
		for i := len(doms.Nets) - 1; i >= 0; i-- {
			if lvl <= v.c.Level(doms.Nets[i]) {
				return i
			}
		}
		return 0
	}
	var objs []objective
	seen := make(map[circuit.NetID]bool)
	for n := 0; n < v.c.NumNets(); n++ {
		if !carrier[n] {
			continue
		}
		y := circuit.NetID(n)
		drv := v.c.Net(y).Driver
		if drv == circuit.InvalidGate {
			continue
		}
		g := v.c.Gate(drv)
		ctrl, has := g.Type.HasControlling()
		if !has {
			continue // parity gates have no sensitising side value
		}
		for _, x := range g.Inputs {
			if carrier[x] || seen[x] {
				continue
			}
			if _, known := sys.Domain(x).KnownValue(); known {
				continue
			}
			seen[x] = true
			objs = append(objs, objective{
				net:    x,
				val:    1 - ctrl,
				weight: dist[y],
				seg:    segOf(y),
			})
		}
	}
	sort.Slice(objs, func(i, j int) bool {
		if objs[i].seg != objs[j].seg {
			return objs[i].seg < objs[j].seg
		}
		if objs[i].weight != objs[j].weight {
			return objs[i].weight > objs[j].weight
		}
		return objs[i].net < objs[j].net
	})
	return objs
}

// backtrace walks an objective (net, val) backwards to a decision
// point: a fanout stem or a primary input whose class is still
// undecided. At each gate it picks the input that can produce the
// needed output value, preferring — per FAN — the hardest input for
// "all inputs must cooperate" objectives (largest SCOAP cost) and the
// easiest for "one input suffices" objectives (smallest SCOAP cost).
// It reports ok = false when the chain dead-ends in already-decided
// nets.
func (v *Verifier) backtrace(sys *constraint.System, net circuit.NetID, val int) (circuit.NetID, int, bool) {
	for hop := 0; hop < v.c.NumNets()+1; hop++ {
		d := sys.Domain(net)
		if _, known := d.KnownValue(); known {
			return circuit.InvalidNet, 0, false // objective already decided
		}
		if d.Wave(val).IsEmpty() {
			return circuit.InvalidNet, 0, false // objective unreachable
		}
		if v.c.Net(net).Driver == circuit.InvalidGate || v.c.IsStem(net) {
			return net, val, true
		}
		g := v.c.Gate(v.c.Net(net).Driver)
		switch {
		case g.Type.Unate():
			if g.Type == circuit.NOT {
				val = 1 - val
			}
			net = g.Inputs[0]
		case g.Type.Parity():
			// Choose the first undecided input; the needed value is the
			// parity residue assuming the others settle as decided (or
			// 0 when unknown).
			residue := val
			if g.Type == circuit.XNOR {
				residue ^= 1
			}
			var pick circuit.NetID = circuit.InvalidNet
			for _, x := range g.Inputs {
				if xv, known := sys.Domain(x).KnownValue(); known {
					residue ^= xv
				} else if pick == circuit.InvalidNet {
					pick = x
				}
			}
			if pick == circuit.InvalidNet {
				return circuit.InvalidNet, 0, false
			}
			net, val = pick, residue
		default:
			ctrl, _ := g.Type.HasControlling()
			want := val
			if g.Type.Inverting() {
				want = 1 - val
			}
			// want == ctrl needs ONE controlling input (easiest);
			// want == non-ctrl needs ALL inputs non-controlling
			// (decide the hardest first).
			needed := ctrl
			pickHardest := false
			if want != ctrl {
				needed = 1 - ctrl
				pickHardest = true
			}
			var pick circuit.NetID = circuit.InvalidNet
			var best int64
			for _, x := range g.Inputs {
				if _, known := sys.Domain(x).KnownValue(); known {
					continue
				}
				if sys.Domain(x).Wave(needed).IsEmpty() {
					continue
				}
				cost := v.cc.Cost(x, needed)
				if pick == circuit.InvalidNet ||
					(pickHardest && cost > best) || (!pickHardest && cost < best) {
					pick, best = x, cost
				}
			}
			if pick == circuit.InvalidNet {
				return circuit.InvalidNet, 0, false
			}
			net, val = pick, needed
		}
	}
	return circuit.InvalidNet, 0, false
}
