// Package core assembles the paper's timing-verification engine: the
// verify/evaluate loop of Figure 4 (waveform-narrowing fixpoint plus
// dynamic-timing-dominator implications), static-learning application,
// stem correlation, the FAN-derived case analysis of Section 5, and
// exact floating-mode delay computation on top of the timing check.
package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/delay"
	"repro/internal/dom"
	"repro/internal/learn"
	"repro/internal/scoap"
	"repro/internal/sim"
	"repro/internal/waveform"
)

// Result is the verdict of a timing check or one of its stages.
type Result int

const (
	// PossibleViolation: the constraint system is still consistent; a
	// violation has not been ruled out (the paper's "P").
	PossibleViolation Result = iota
	// NoViolation: proven — the output cannot transition at or after δ
	// (the paper's "N").
	NoViolation
	// ViolationFound: case analysis produced a test vector witnessing
	// the violation (the paper's "V").
	ViolationFound
	// Abandoned: case analysis exceeded the backtrack budget (the
	// paper's "A").
	Abandoned
	// StageSkipped: the stage was not needed (the paper's "-").
	StageSkipped
	// Cancelled: the check was interrupted by a context cancellation or
	// deadline before any stage could decide it. Unlike Abandoned (a
	// budget ran out — the engine gave up on an open question),
	// Cancelled says the caller withdrew the question; re-running with
	// more time may still decide it either way.
	Cancelled
)

// String renders the paper's single-letter codes.
func (r Result) String() string {
	switch r {
	case PossibleViolation:
		return "P"
	case NoViolation:
		return "N"
	case ViolationFound:
		return "V"
	case Abandoned:
		return "A"
	case StageSkipped:
		return "-"
	case Cancelled:
		return "C"
	}
	return "?"
}

// ParseResult is the inverse of Result.String: it decodes the paper's
// single-letter verdict codes as served on the wire (CheckResult stage
// fields). A coordinator merging sharded results uses it to rebuild
// reports for circuit-level aggregation.
func ParseResult(s string) (Result, bool) {
	switch s {
	case "P":
		return PossibleViolation, true
	case "N":
		return NoViolation, true
	case "V":
		return ViolationFound, true
	case "A":
		return Abandoned, true
	case "-":
		return StageSkipped, true
	case "C":
		return Cancelled, true
	}
	return PossibleViolation, false
}

// Options configure the verifier stages.
type Options struct {
	// UseDominators enables the dynamic-timing-dominator implications
	// (Section 4). On by default in Default().
	UseDominators bool
	// UseStaticDominators additionally applies the Lemma-3 narrowing
	// once per check from the static timing dominators (purely
	// structural, cheaper but weaker than the dynamic ones; useful for
	// the ablation study — Default() leaves it off because the dynamic
	// dominators subsume it after the first fixpoint).
	UseStaticDominators bool
	// UseLearning enables static-learning implications (Section 4).
	UseLearning bool
	// UseStemCorrelation enables the reconvergent-stem correlation
	// preprocessing of Section 5.
	UseStemCorrelation bool
	// UseConeSlicing solves each check on the sink's transitive fan-in
	// cone instead of the whole circuit. The cone contains every net
	// the check can constrain — a gate whose output lies in the cone
	// has all of its inputs in the cone, so no information can flow
	// back in from the unconstrained region outside it — which makes
	// the sliced check verdict-equivalent while the per-check system
	// shrinks to the sink's own logic on wide multi-output circuits.
	// Witnesses, traces, and dominator sets are translated back to
	// original-circuit ids. On by default in Default(); the front ends
	// expose -no-cone as the escape hatch.
	UseConeSlicing bool
	// UseWarmStart seeds each check's stage-1 solve from the most
	// recent plain fixpoint recorded for the same sink at a smaller or
	// equal δ, instead of starting from ⊤. Sound because the check
	// output constraint shrinks as δ grows, so the old fixpoint
	// sandwiched with the new sink constraint still contains the new
	// greatest fixpoint (DESIGN.md §14). The fixpoint reached is
	// canonical, so verdicts, stages, and witnesses are bit-identical
	// to a cold solve; only statistics (propagation counts, stage
	// times) change. Falls back to a cold solve when no seed exists,
	// δ decreased, UseStaticDominators is on, or another goroutine
	// holds the sink's memo. On by default in Default(); the front
	// ends expose -no-warm-start.
	UseWarmStart bool
	// MaxBacktracks bounds the case analysis; beyond it the check is
	// Abandoned.
	MaxBacktracks int
	// MaxStemSplits caps the number of stems correlated per check
	// (carrier stems first, then side-condition stems, deepest first).
	// 0 means unlimited.
	MaxStemSplits int
}

// Default returns the full configuration used for the paper's results.
func Default() Options {
	return Options{
		UseDominators:      true,
		UseLearning:        true,
		UseStemCorrelation: true,
		UseConeSlicing:     true,
		UseWarmStart:       true,
		MaxBacktracks:      200000,
		MaxStemSplits:      64,
	}
}

// Verifier holds per-circuit preprocessing shared across checks. All
// of its static state comes from a Prepared, so several verifiers
// (different option sets, cone sub-verifiers) share one precompute.
type Verifier struct {
	c    *circuit.Circuit
	opts Options

	prep     *Prepared // shared precompute; nil on cone sub-verifiers
	analysis *delay.Analysis
	cc       *scoap.Controllability
	table    *learn.Table    // nil unless UseLearning
	stems    []circuit.NetID // cached reconvergent fanout stems

	coneMu sync.Mutex
	cones  map[circuit.NetID]*coneVerifier // guarded by coneMu

	warmMu sync.Mutex
	warm   map[circuit.NetID]*warmState // per-sink warm-start memos; guarded by warmMu
}

// NewVerifier prepares a verifier for the circuit (computing arrival
// times, SCOAP controllabilities, and — if enabled — the static
// learning table). It is Prepare(c).NewVerifier(opts); call Prepare
// directly to share the precompute across several option sets.
func NewVerifier(c *circuit.Circuit, opts Options) *Verifier {
	return Prepare(c).NewVerifier(opts)
}

// Circuit returns the verifier's netlist.
func (v *Verifier) Circuit() *circuit.Circuit { return v.c }

// Topological returns the circuit's topological delay.
func (v *Verifier) Topological() waveform.Time { return v.analysis.Topological() }

// Report describes one timing check's outcome stage by stage, matching
// the columns of Table 1.
type Report struct {
	Sink  circuit.NetID
	Delta waveform.Time

	// BeforeGITD is the verdict of the plain constraint evaluation
	// (column "BEFORE G.I.T.D.").
	BeforeGITD Result
	// AfterGITD is the verdict after global implications on timing
	// dominators and learning (column "AFTER G.I.T.D.").
	AfterGITD Result
	// AfterStem is the verdict after stem correlation (column "AFTER
	// STEM C.").
	AfterStem Result
	// Backtracks is the case-analysis backtrack count (column "C.A.
	// #BTRCK").
	Backtracks int
	// CaseAnalysis is the case-analysis verdict (column "C.A. RESULT").
	CaseAnalysis Result
	// Final is the overall verdict of the check.
	Final Result

	// Witness is the violating input vector when Final ==
	// ViolationFound, with its simulated settle time.
	Witness       sim.Vector
	WitnessSettle waveform.Time

	// Dominators is the number of dynamic timing dominators seen on the
	// first dominator round (the c1908 anecdote statistic).
	Dominators int
	// DominatorSet lists those first-round dominators (source-first,
	// with their distance bounds), always in original-circuit ids —
	// cone-sliced checks translate them back before reporting.
	DominatorSet dom.Dominators
	// DominatorRounds counts evaluate-loop iterations that applied
	// dominator narrowing.
	DominatorRounds int
	// Propagations counts gate-constraint applications.
	Propagations int64
	// Started is the wall-clock instant the check began; Elapsed is its
	// wall-clock time. Together they place the check on a wall-clock
	// timeline (the lttad cluster trace) without re-measuring.
	Started time.Time
	Elapsed time.Duration

	// Stats carries the engine-level telemetry of the check (always
	// filled; see Stats).
	Stats Stats
}

// Check runs the full pipeline of the paper on the timing check
// (sink, δ): plain fixpoint, dominator implications, stem correlation,
// then case analysis, stopping as soon as a stage proves NoViolation.
//
// Deprecated: Check is a compatibility wrapper over [Verifier.Run],
// which additionally supports cancellation, deadlines, budgets, and
// tracing. New code should call Run.
func (v *Verifier) Check(sink circuit.NetID, delta waveform.Time) *Report {
	return v.Run(context.Background(), Request{Sink: sink, Delta: delta})
}

// VerifyOnly runs the verify() procedure of Figure 4 — fixpoint plus
// dominator implications, no case analysis — and returns NoViolation or
// PossibleViolation.
//
// Deprecated: VerifyOnly is a compatibility wrapper over
// [Verifier.Run] with Request.VerifyOnly set. New code should call Run.
func (v *Verifier) VerifyOnly(sink circuit.NetID, delta waveform.Time) Result {
	return v.Run(context.Background(), Request{Sink: sink, Delta: delta, VerifyOnly: true}).Final
}

// evaluate is the evaluate() loop of Figure 4 extended with learning:
// reach the fixpoint; on consistency apply learned implications and
// dominator narrowing; repeat until nothing changes. An interrupted
// solve returns Cancelled or Abandoned per the run state.
func (v *Verifier) evaluate(rs *runState, sys *constraint.System, sink circuit.NetID, delta waveform.Time, rep *Report) Result {
	round := 0
	for {
		if !sys.Fixpoint() {
			return NoViolation
		}
		if sys.Stopped() {
			return rs.stopVerdict()
		}
		changed := false
		if v.opts.UseLearning && v.table != nil {
			if v.table.Apply(sys) {
				changed = true
			}
		}
		if v.opts.UseDominators {
			doms := dom.Dynamic(sys, sink, delta)
			if rep.Dominators == 0 {
				rep.Dominators = len(doms.Nets)
				rep.DominatorSet = doms
			}
			narrowed := dom.NarrowDominators(sys, doms, delta)
			if narrowed {
				changed = true
				rep.DominatorRounds++
			}
			if rs.tracer != nil {
				round++
				rs.tracer.DominatorRound(round, len(doms.Nets), narrowed)
			}
		}
		if !changed {
			return PossibleViolation
		}
	}
}

// stemCorrelation performs the Section-5 preprocessing: for every
// reconvergent fanout stem relevant to the check, evaluate both class
// restrictions of the stem and replace every domain by the union of
// the two branch results. A stem whose branches are both inconsistent
// refutes the check.
//
// Fidelity note: the paper correlates stems "that are dynamic
// carriers". We widen the selection to stems whose transitive fanout
// reaches a dynamic carrier — side-condition stems whose value gates
// the carrier paths without ever carrying the late transition
// themselves (the e3-style conflicts of Figure 1, distributed over
// reconvergent branches, are only refutable this way). The widening is
// sound (each branch evaluation is) and only costs extra splits.
func (v *Verifier) stemCorrelation(rs *runState, sys *constraint.System, sink circuit.NetID, delta waveform.Time, rep *Report) Result {
	allStems := v.stems
	if len(allStems) == 0 {
		return PossibleViolation
	}
	carrier, _ := dom.DynamicCarriers(sys, sink, delta)
	influence := influenceMask(v.c, carrier)
	// Order: carrier stems first (the paper's criterion), then
	// side-condition stems; deepest first within each group. A budget
	// caps the splits so wide circuits stay tractable.
	stems := append([]circuit.NetID(nil), allStems...)
	sort.Slice(stems, func(i, j int) bool {
		ci, cj := carrier[stems[i]], carrier[stems[j]]
		if ci != cj {
			return ci
		}
		li, lj := v.c.Level(stems[i]), v.c.Level(stems[j])
		if li != lj {
			return li > lj
		}
		return stems[i] < stems[j]
	})
	splits := 0
	n := v.c.NumNets()
	branch := make([]waveform.Signal, n)
	for _, stem := range stems {
		if !influence[stem] {
			continue
		}
		if rs.maxSplits > 0 && splits >= rs.maxSplits {
			break
		}
		d := sys.Domain(stem)
		if _, known := d.KnownValue(); known {
			continue
		}
		splits++
		rep.Stats.StemSplits = splits
		if rs.tracer != nil {
			rs.tracer.StemSplit(splits, stem)
		}
		// Branch 0.
		sys.Mark()
		sys.Narrow(stem, waveform.SettledTo(0))
		ok0 := v.evaluate(rs, sys, sink, delta, rep) == PossibleViolation
		if sys.Stopped() {
			sys.Undo()
			return rs.stopVerdict()
		}
		if ok0 {
			for i := 0; i < n; i++ {
				branch[i] = sys.Domain(circuit.NetID(i))
			}
		}
		sys.Undo()
		// Branch 1.
		sys.Mark()
		sys.Narrow(stem, waveform.SettledTo(1))
		ok1 := v.evaluate(rs, sys, sink, delta, rep) == PossibleViolation
		if sys.Stopped() {
			sys.Undo()
			return rs.stopVerdict()
		}
		switch {
		case !ok0 && !ok1:
			sys.Undo()
			// Both branches refuted: the check is impossible.
			sys.Narrow(sink, waveform.EmptySignal)
			return NoViolation
		case ok0 && !ok1:
			sys.Undo()
			for i := 0; i < n; i++ {
				sys.Narrow(circuit.NetID(i), branch[i])
			}
		case !ok0 && ok1:
			for i := 0; i < n; i++ {
				branch[i] = sys.Domain(circuit.NetID(i))
			}
			sys.Undo()
			for i := 0; i < n; i++ {
				sys.Narrow(circuit.NetID(i), branch[i])
			}
		default:
			// Union of the two branch domains.
			for i := 0; i < n; i++ {
				branch[i] = branch[i].Union(sys.Domain(circuit.NetID(i)))
			}
			sys.Undo()
			for i := 0; i < n; i++ {
				sys.Narrow(circuit.NetID(i), branch[i])
			}
		}
		switch res := v.evaluate(rs, sys, sink, delta, rep); res {
		case NoViolation, Cancelled, Abandoned:
			return res
		}
		// Refresh carrier information for subsequent stems.
		carrier, _ = dom.DynamicCarriers(sys, sink, delta)
		influence = influenceMask(v.c, carrier)
	}
	return PossibleViolation
}

// influenceMask marks nets whose transitive fanout (including the net
// itself) contains a carrier net.
func influenceMask(c *circuit.Circuit, carrier []bool) []bool {
	inf := make([]bool, len(carrier))
	copy(inf, carrier)
	topo := c.TopoGates()
	for i := len(topo) - 1; i >= 0; i-- {
		g := c.Gate(topo[i])
		if !inf[g.Output] {
			continue
		}
		for _, in := range g.Inputs {
			inf[in] = true
		}
	}
	return inf
}
