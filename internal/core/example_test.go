package core_test

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
)

// ExampleVerifier_Check runs the paper's Example 2: on the Figure-1
// circuit the timing check at δ=61 is refuted while δ=60 is witnessed.
func ExampleVerifier_Check() {
	c := gen.Hrapcenko(10)
	s, _ := c.NetByName("s")
	v := core.NewVerifier(c, core.Default())

	fmt.Println("check (s, 61):", v.Check(s, 61).Final)
	rep := v.Check(s, 60)
	fmt.Println("check (s, 60):", rep.Final, "settle", rep.WitnessSettle)
	// Output:
	// check (s, 61): N
	// check (s, 60): V settle 60
}

// ExampleVerifier_ExactFloatingDelay computes the exact floating-mode
// delay of a freshly built netlist.
func ExampleVerifier_ExactFloatingDelay() {
	b := circuit.NewBuilder("demo")
	b.Input("a")
	b.Input("en")
	b.Gate(circuit.BUFFER, 10, "n1", "a")
	b.Gate(circuit.BUFFER, 10, "n2", "n1")
	b.Gate(circuit.AND, 10, "z", "n2", "en")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	v := core.NewVerifier(c, core.Default())
	z, _ := c.NetByName("z")
	res, _ := v.ExactFloatingDelay(z)
	fmt.Println("top:", v.Topological(), "floating:", res.Delay, "exact:", res.Exact)
	// Output:
	// top: 30 floating: 30 exact: true
}

// ExampleVerifier_WitnessPath extracts the sensitised path of a found
// violation.
func ExampleVerifier_WitnessPath() {
	c := gen.C17(10)
	g22, _ := c.NetByName("G22")
	v := core.NewVerifier(c, core.Default())
	rep := v.Check(g22, 30)
	path, _ := v.WitnessPath(g22, rep.Witness)
	for i, n := range path {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Print(c.Net(n).Name)
	}
	fmt.Println()
	// Output:
	// G3 -> G11 -> G16 -> G22
}
