package core

import (
	"sync"

	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/waveform"
)

// Warm-start δ-sweeps (DESIGN.md §14). A sweep re-checks the same sink
// at sliding thresholds δ, and the sink constraint CheckOutput(δ) only
// shrinks as δ grows. Every projection is monotone and reductive, so
// the greatest fixpoint at δ' ≥ δ satisfies
//
//	gfp(δ') ⊑ gfp(δ) ⊓ CheckOutput(δ') ⊑ D0(δ')
//
// — the old fixpoint, re-narrowed at the sink, sandwiches the new
// fixpoint from above, and chaotic iteration from any point between
// gfp(δ') and D0(δ') converges to exactly gfp(δ'). Seeding from the
// previous fixpoint therefore reproduces the cold stage-1 domains
// bit-for-bit; every later stage is a deterministic function of those
// domains, so verdicts, stages, and witnesses cannot change — only the
// work statistics do. The same monotonicity gives the refutation
// shortcut: stage-1 inconsistency at δ refutes every δ' ≥ δ outright.
//
// The memo is per (verifier, sink). Cone-sliced checks run on the
// cached cone sub-verifier, so each cone keeps its own memo keyed by
// the cone-local sink and the seed always matches the system it is
// restored into.

// warmState is one sink's warm-start memo: a reusable constraint
// system plus the latest stage-1 fixpoint snapshot and the smallest δ
// known stage-1-refuted. All fields are guarded by mu; Run acquires it
// with TryLock so concurrent checks on the same sink never serialize —
// the loser just solves cold and leaves the memo alone.
type warmState struct {
	mu sync.Mutex

	sys *constraint.System // reusable solver, lazily built; guarded by mu

	snap      []int64       // stage-1 fixpoint domains at snapDelta; guarded by mu
	snapDelta waveform.Time // guarded by mu
	snapValid bool          // guarded by mu

	inconsDelta waveform.Time // smallest δ known stage-1-inconsistent; guarded by mu
	inconsValid bool          // guarded by mu
}

// warmFor returns the sink's memo, creating it on first use.
func (v *Verifier) warmFor(sink circuit.NetID) *warmState {
	v.warmMu.Lock()
	defer v.warmMu.Unlock()
	if v.warm == nil {
		v.warm = make(map[circuit.NetID]*warmState)
	}
	w := v.warm[sink]
	if w == nil {
		w = &warmState{}
		v.warm[sink] = w
	}
	return w
}

// system returns the memo's reusable System, building it on first use.
// Caller holds w.mu.
func (w *warmState) system(c *circuit.Circuit) *constraint.System {
	if w.sys == nil {
		w.sys = constraint.New(c)
	}
	return w.sys
}

// noteFixpoint records a completed (not stopped) stage-1 fixpoint as
// the seed for later δ ≥ delta. Caller holds w.mu; sys is the memo's
// own system at its plain fixpoint.
func (w *warmState) noteFixpoint(sys *constraint.System, delta waveform.Time) {
	w.snap = sys.Snapshot(w.snap)
	w.snapDelta = delta
	w.snapValid = true
}

// noteRefuted records a stage-1 refutation at delta, which by
// monotonicity refutes every δ ≥ delta. Caller holds w.mu.
func (w *warmState) noteRefuted(delta waveform.Time) {
	if !w.inconsValid || delta < w.inconsDelta {
		w.inconsDelta = delta
		w.inconsValid = true
	}
}
