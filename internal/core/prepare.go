package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/delay"
	"repro/internal/learn"
	"repro/internal/scoap"
	"repro/internal/sim"
	"repro/internal/waveform"
)

// Prepared is the immutable per-circuit precompute shared by every
// verifier on a circuit: arrival-time analysis, SCOAP
// controllabilities, reconvergent stems, the lazily-built static
// learning table, and the per-sink fan-in cone slices used by
// cone-sliced solving. A sweep over many δ values or option sets pays
// for each analysis once — NewVerifier derives verifiers that all
// point at the same Prepared. All methods are safe for concurrent
// use: the cone cache grows under a mutex with per-sink once
// initialisation, so parallel RunAll workers build distinct cones
// concurrently but never duplicate one.
type Prepared struct {
	c        *circuit.Circuit
	analysis *delay.Analysis
	cc       *scoap.Controllability
	stems    []circuit.NetID

	learnOnce sync.Once
	learn     *learn.Table

	coneMu sync.Mutex
	cones  map[circuit.NetID]*conePrep // guarded by coneMu
}

// Prepare computes the shareable static analyses of a circuit.
func Prepare(c *circuit.Circuit) *Prepared {
	return &Prepared{
		c:        c,
		analysis: delay.New(c),
		cc:       scoap.Compute(c),
		stems:    c.ReconvergentStems(),
		cones:    make(map[circuit.NetID]*conePrep),
	}
}

// Circuit returns the prepared netlist.
func (p *Prepared) Circuit() *circuit.Circuit { return p.c }

// Analysis returns the arrival-time analysis.
func (p *Prepared) Analysis() *delay.Analysis { return p.analysis }

// LearnTable returns the static learning table, computing it on first
// use (it is the most expensive precompute and not every option set
// needs it).
func (p *Prepared) LearnTable() *learn.Table {
	p.learnOnce.Do(func() { p.learn = learn.Precompute(p.c) })
	return p.learn
}

// NewVerifier derives a verifier with the given options from the
// shared precompute.
func (p *Prepared) NewVerifier(opts Options) *Verifier {
	v := &Verifier{c: p.c, opts: opts, prep: p,
		analysis: p.analysis, cc: p.cc, stems: p.stems}
	if opts.UseLearning {
		v.table = p.LearnTable()
	}
	return v
}

// conePrep is the option-independent slice of one sink's fan-in cone:
// the cone circuit with its id maps plus the static analyses projected
// or recomputed on it. Built once per (circuit, sink) and shared by
// every verifier derived from the Prepared.
type conePrep struct {
	once sync.Once

	// full marks a cone spanning the whole circuit; slicing it would
	// only duplicate the system, so Run solves on the original.
	full bool
	cone *circuit.Circuit
	cm   *circuit.ConeMap

	analysis *delay.Analysis
	cc       *scoap.Controllability
	stems    []circuit.NetID

	learnOnce sync.Once
	learn     *learn.Table
}

// coneFor returns the cone precompute for sink, building it on first
// use; nil when the cone spans the whole circuit (or extraction
// failed) and slicing would buy nothing.
func (p *Prepared) coneFor(sink circuit.NetID) *conePrep {
	p.coneMu.Lock()
	cp := p.cones[sink]
	if cp == nil {
		cp = new(conePrep)
		p.cones[sink] = cp
	}
	p.coneMu.Unlock()
	cp.once.Do(func() { cp.build(p, sink) })
	if cp.cone == nil {
		return nil
	}
	return cp
}

func (cp *conePrep) build(p *Prepared, sink circuit.NetID) {
	mask := p.c.TransitiveFanin(sink)
	in := 0
	for _, ok := range mask {
		if ok {
			in++
		}
	}
	if in == p.c.NumNets() {
		cp.full = true
		return
	}
	cone, cm, err := circuit.ExtractConeMapped(p.c, sink)
	if err != nil {
		return // defensive: a nil cone falls back to whole-circuit solving
	}
	cp.cone, cp.cm = cone, cm
	cp.analysis = delay.New(cone)
	// Arrival times and SCOAP controllabilities are functions of each
	// net's fan-in alone, which the slice preserves, so the projection
	// is identical to recomputing on the cone.
	cp.cc = p.cc.Project(cm.FromCone)
	// Restrict the original circuit's reconvergent stems to the cone
	// instead of recomputing them on the slice: reconvergence seen by
	// the whole circuit may run through gates outside the cone, and
	// using the same candidate set (in the same id order) keeps stem
	// selection, split budgets, and split order aligned with
	// whole-circuit solving.
	for _, s := range p.stems {
		if id := cm.ToCone[s]; id != circuit.InvalidNet {
			cp.stems = append(cp.stems, id)
		}
	}
}

// learnTable lazily projects the parent's learning table onto the cone.
func (cp *conePrep) learnTable(p *Prepared) *learn.Table {
	cp.learnOnce.Do(func() {
		cp.learn = p.LearnTable().Project(cp.cone, cp.cm.ToCone, cp.cm.FromCone)
	})
	return cp.learn
}

// coneVerifier pairs the sub-verifier solving on one sink's cone slice
// with the id maps needed to translate its reports back. Cached per
// sink on the (options-carrying) Verifier; the underlying cone
// geometry and analyses come from the shared Prepared.
type coneVerifier struct {
	once sync.Once
	sub  *Verifier
	cm   *circuit.ConeMap
	nPIs int // original primary-input count, for witness expansion
}

// coneFor returns the cached cone sub-verifier for sink, or nil when
// the sink's cone spans the whole circuit and Run should solve on the
// original system.
func (v *Verifier) coneFor(sink circuit.NetID) *coneVerifier {
	v.coneMu.Lock()
	if v.cones == nil {
		v.cones = make(map[circuit.NetID]*coneVerifier)
	}
	cv := v.cones[sink]
	if cv == nil {
		cv = new(coneVerifier)
		v.cones[sink] = cv
	}
	v.coneMu.Unlock()
	cv.once.Do(func() { cv.init(v, sink) })
	if cv.sub == nil {
		return nil
	}
	return cv
}

func (cv *coneVerifier) init(v *Verifier, sink circuit.NetID) {
	cp := v.prep.coneFor(sink)
	if cp == nil {
		return
	}
	subOpts := v.opts
	subOpts.UseConeSlicing = false
	sub := &Verifier{c: cp.cone, opts: subOpts,
		analysis: cp.analysis, cc: cp.cc, stems: cp.stems}
	if v.opts.UseLearning {
		sub.table = cp.learnTable(v.prep)
	}
	cv.sub, cv.cm = sub, cp.cm
	cv.nPIs = len(v.c.PrimaryInputs())
}

// runCone executes the check on the sink's fan-in cone slice and
// translates the report back to original-circuit ids: the sink, the
// witness vector, and the dominator nets. Primary inputs outside the
// cone cannot affect the sink, so the expanded witness sets them to 0;
// its simulated settle time on the original circuit equals the one
// certified on the cone. The caller's tracer sees original ids
// throughout: CheckStart/CheckDone fire here against the original
// sink, and a translating wrapper renames the nets of inner events.
func (v *Verifier) runCone(ctx context.Context, req Request, cv *coneVerifier) *Report {
	outer := req.Tracer
	sub := req
	sub.Sink = cv.cm.Sink
	if outer != nil {
		outer.CheckStart(req.Sink, req.Delta)
		sub.Tracer = &coneTracer{inner: outer, fromCone: cv.cm.FromCone}
	}
	rep := cv.sub.run(ctx, sub)
	rep.Sink = req.Sink
	if len(rep.Witness) > 0 {
		w := make(sim.Vector, cv.nPIs)
		for i, val := range rep.Witness {
			w[cv.cm.PIIndex[i]] = val
		}
		rep.Witness = w
	}
	rep.DominatorSet = rep.DominatorSet.MapNets(cv.cm.FromCone)
	if outer != nil {
		outer.CheckDone(rep)
	}
	return rep
}

// coneTracer translates the net ids of trace events fired by a cone
// sub-verifier back into original-circuit ids, and suppresses the
// inner CheckStart/CheckDone (runCone fires them against the original
// sink, with the translated report).
type coneTracer struct {
	inner    Tracer
	fromCone []circuit.NetID
}

func (t *coneTracer) CheckStart(circuit.NetID, waveform.Time) {}
func (t *coneTracer) CheckDone(*Report)                       {}

func (t *coneTracer) StageEnter(st Stage) { t.inner.StageEnter(st) }
func (t *coneTracer) StageExit(st Stage, res Result, d time.Duration) {
	t.inner.StageExit(st, res, d)
}
func (t *coneTracer) Decision(depth int, n circuit.NetID, val int) {
	t.inner.Decision(depth, t.fromCone[n], val)
}
func (t *coneTracer) Backtrack(total int) { t.inner.Backtrack(total) }
func (t *coneTracer) StemSplit(split int, stem circuit.NetID) {
	t.inner.StemSplit(split, t.fromCone[stem])
}
func (t *coneTracer) DominatorRound(round, doms int, narrowed bool) {
	t.inner.DominatorRound(round, doms, narrowed)
}
