package delay

import (
	"repro/internal/circuit"
	"repro/internal/waveform"
)

// Early holds the minimum-delay (d_min) side of the paper's delay
// intervals [d_min, d_max]. The paper's maximum floating-mode delay
// calculation uses only d_max; the earliest-arrival analysis below is
// the complementary hold-style bound a timing verifier reports next to
// the late bound.
type Early struct {
	c *circuit.Circuit
	// earliest[n] is the earliest time net n can possibly change after
	// the inputs switch at t = 0: the shortest d_min path from any
	// primary input.
	earliest []waveform.Time
}

// NewEarly computes earliest change times over the d_min delays.
func NewEarly(c *circuit.Circuit) *Early {
	e := &Early{c: c, earliest: make([]waveform.Time, c.NumNets())}
	for i := range e.earliest {
		e.earliest[i] = waveform.PosInf
	}
	for _, pi := range c.PrimaryInputs() {
		e.earliest[pi] = 0
	}
	for _, gid := range c.TopoGates() {
		g := c.Gate(gid)
		best := waveform.PosInf
		for _, in := range g.Inputs {
			if e.earliest[in] < best {
				best = e.earliest[in]
			}
		}
		t := best.Add(waveform.Time(g.DMin))
		if t < e.earliest[g.Output] {
			e.earliest[g.Output] = t
		}
	}
	return e
}

// Earliest returns the earliest possible change time of net n (PosInf
// for nets unreachable from any input).
func (e *Early) Earliest(n circuit.NetID) waveform.Time { return e.earliest[n] }

// ShortestPath returns the minimum d_min path delay of the circuit
// (minimum earliest arrival over the primary outputs) — the hold-style
// figure of merit.
func (e *Early) ShortestPath() waveform.Time {
	best := waveform.PosInf
	for _, po := range e.c.PrimaryOutputs() {
		if e.earliest[po] < best {
			best = e.earliest[po]
		}
	}
	return best
}

// Window reports the switching window [Earliest, Arrival] of a net
// given the late analysis — the interval outside which the net is
// provably stable, before any functional (false-path) reasoning.
func Window(e *Early, a *Analysis, n circuit.NetID) (lo, hi waveform.Time) {
	return e.Earliest(n), a.Arrival(n)
}
