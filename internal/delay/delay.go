// Package delay computes the purely structural timing quantities of
// the paper: path lengths as sums of gate d_max delays, the topological
// delay of nets and of the whole circuit (top, top_n, top_n1→n2), and a
// classical static-timing-analysis baseline (arrival/required/slack),
// which is the conservative comparator the paper argues against.
package delay

import (
	"repro/internal/circuit"
	"repro/internal/waveform"
)

// Analysis holds structural timing data for one circuit.
type Analysis struct {
	c *circuit.Circuit
	// arrival[n] = top_n: length of the longest path from any primary
	// input to net n (0 for PIs).
	arrival []waveform.Time
}

// New computes the topological arrival times of every net.
func New(c *circuit.Circuit) *Analysis {
	a := &Analysis{c: c, arrival: make([]waveform.Time, c.NumNets())}
	for _, gid := range c.TopoGates() {
		g := c.Gate(gid)
		worst := waveform.Time(0)
		for _, in := range g.Inputs {
			if a.arrival[in] > worst {
				worst = a.arrival[in]
			}
		}
		t := worst.Add(waveform.Time(g.Delay))
		if t > a.arrival[g.Output] {
			a.arrival[g.Output] = t
		}
	}
	return a
}

// Arrival returns top_n — the longest-path delay from the primary
// inputs to net n.
func (a *Analysis) Arrival(n circuit.NetID) waveform.Time { return a.arrival[n] }

// Topological returns top — the longest-path delay of the circuit
// (maximum arrival over the primary outputs).
func (a *Analysis) Topological() waveform.Time {
	worst := waveform.Time(0)
	for _, po := range a.c.PrimaryOutputs() {
		if a.arrival[po] > worst {
			worst = a.arrival[po]
		}
	}
	return worst
}

// ToNet computes top_n1→n2 for a fixed sink: the length of the longest
// path from every net to the given sink net. Nets with no path to sink
// get NegInf. The sink itself is at 0.
func ToNet(c *circuit.Circuit, sink circuit.NetID) []waveform.Time {
	dist := make([]waveform.Time, c.NumNets())
	for i := range dist {
		dist[i] = waveform.NegInf
	}
	dist[sink] = 0
	topo := c.TopoGates()
	for i := len(topo) - 1; i >= 0; i-- {
		g := c.Gate(topo[i])
		d := dist[g.Output]
		if d == waveform.NegInf {
			continue
		}
		t := d.Add(waveform.Time(g.Delay))
		for _, in := range g.Inputs {
			if t > dist[in] {
				dist[in] = t
			}
		}
	}
	return dist
}

// STA is a classical static timing report for one circuit against a
// required time (clock period): per-output arrival, slack, and the
// critical path.
type STA struct {
	Required waveform.Time
	// Arrival per primary output, in PO declaration order.
	OutputArrival []waveform.Time
	// Slack per primary output (Required − Arrival).
	OutputSlack []waveform.Time
	// WorstOutput is the index (into PrimaryOutputs) of the output with
	// the least slack.
	WorstOutput int
	// CriticalPath is a topological critical path, as net ids from a
	// primary input to the worst output.
	CriticalPath []circuit.NetID
}

// Run computes the STA baseline for the circuit under the given
// required time.
func Run(c *circuit.Circuit, required waveform.Time) *STA {
	a := New(c)
	s := &STA{Required: required}
	worst := waveform.NegInf
	for i, po := range c.PrimaryOutputs() {
		arr := a.Arrival(po)
		s.OutputArrival = append(s.OutputArrival, arr)
		s.OutputSlack = append(s.OutputSlack, required.Sub(arr))
		if arr > worst {
			worst = arr
			s.WorstOutput = i
		}
	}
	// Trace one critical path backwards from the worst output: at each
	// driven net pick an input whose arrival plus the gate delay equals
	// the net's arrival.
	n := c.PrimaryOutputs()[s.WorstOutput]
	path := []circuit.NetID{n}
	for {
		d := c.Net(n).Driver
		if d == circuit.InvalidGate {
			break
		}
		g := c.Gate(d)
		var pick circuit.NetID = circuit.InvalidNet
		for _, in := range g.Inputs {
			if a.Arrival(in).Add(waveform.Time(g.Delay)) == a.Arrival(n) {
				pick = in
				break
			}
		}
		if pick == circuit.InvalidNet {
			// Defensive: arrival bookkeeping guarantees a justifying
			// input exists; fall back to the slowest input.
			pick = g.Inputs[0]
			for _, in := range g.Inputs {
				if a.Arrival(in) > a.Arrival(pick) {
					pick = in
				}
			}
		}
		path = append(path, pick)
		n = pick
	}
	// Reverse to PI→PO order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	s.CriticalPath = path
	return s
}

// StaticCarrierMask returns, for the timing check (c, sink, δ), the set
// of static carriers (Definition 4): nets x lying on a path through the
// sink of length ≥ δ, i.e. top_x + top_x→sink ≥ δ. The result is a
// boolean slice indexed by NetID.
func StaticCarrierMask(c *circuit.Circuit, a *Analysis, sink circuit.NetID, delta waveform.Time) []bool {
	toSink := ToNet(c, sink)
	mask := make([]bool, c.NumNets())
	for i := range mask {
		if toSink[i] == waveform.NegInf {
			continue
		}
		if a.Arrival(circuit.NetID(i)).Add(toSink[i]) >= delta {
			mask[i] = true
		}
	}
	return mask
}
