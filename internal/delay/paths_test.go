package delay

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

func TestKLongestPathsChain(t *testing.T) {
	c := c17(t)
	g22 := id(t, c, "G22")
	paths := KLongestPaths(c, g22, 10)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	// Longest paths to G22 have length 30 (G3/G6 → G11 → G16 → G22).
	if paths[0].Length != 30 {
		t.Fatalf("longest = %s, want 30", paths[0].Length)
	}
	// Descending lengths.
	for i := 1; i < len(paths); i++ {
		if paths[i].Length > paths[i-1].Length {
			t.Fatal("paths not sorted by length")
		}
	}
	// Every path is structurally valid: starts at a PI, ends at G22,
	// consecutive nets connected through a gate.
	for _, p := range paths {
		if !c.Net(p.Nets[0]).IsPI {
			t.Fatalf("path must start at a PI: %v", PathNames(c, p))
		}
		if p.Nets[len(p.Nets)-1] != g22 {
			t.Fatalf("path must end at sink: %v", PathNames(c, p))
		}
		var length waveform.Time
		for i := 1; i < len(p.Nets); i++ {
			g := c.Gate(c.Net(p.Nets[i]).Driver)
			found := false
			for _, in := range g.Inputs {
				if in == p.Nets[i-1] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("path edge %d invalid: %v", i, PathNames(c, p))
			}
			length = length.Add(waveform.Time(g.Delay))
		}
		if length != p.Length {
			t.Fatalf("path length %s inconsistent with structure %s", p.Length, length)
		}
	}
}

func TestKLongestPathsCount(t *testing.T) {
	c := c17(t)
	g22 := id(t, c, "G22")
	// G22 has exactly 4 input-to-output paths:
	// G1→G10→G22, G3→G10→G22, G3→G11→G16→G22, G6→G11→G16→G22, G2→G16→G22.
	all := KLongestPaths(c, g22, 100)
	if len(all) != 5 {
		for _, p := range all {
			t.Logf("path: %v (%s)", PathNames(c, p), p.Length)
		}
		t.Fatalf("got %d paths, want 5", len(all))
	}
	two := KLongestPaths(c, g22, 2)
	if len(two) != 2 || two[0].Length != 30 || two[1].Length != 30 {
		t.Fatalf("top-2 wrong: %v", two)
	}
	if KLongestPaths(c, g22, 0) != nil {
		t.Fatal("k=0 must return nil")
	}
}

func TestKLongestPathsDegenerate(t *testing.T) {
	// A PI that is also a PO has one zero-length path.
	b := circuit.NewBuilder("deg")
	b.Input("a")
	b.Output("a")
	b.Input("b")
	b.Gate(circuit.NOT, 5, "z", "b")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.NetByName("a")
	paths := KLongestPaths(c, a, 5)
	if len(paths) != 1 || paths[0].Length != 0 || len(paths[0].Nets) != 1 {
		t.Fatalf("degenerate path wrong: %+v", paths)
	}
}
