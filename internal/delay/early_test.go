package delay

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

func TestEarliestArrival(t *testing.T) {
	c := c17(t)
	e := NewEarly(c)
	// All gates have DMin = Delay = 10 by construction here.
	want := map[string]waveform.Time{
		"G1": 0, "G3": 0,
		"G10": 10, "G11": 10,
		"G16": 10, // min path: G2 → G16 (one gate)
		"G22": 20, // min path: e.g. G1 → G10 → G22
		"G23": 20,
	}
	for name, w := range want {
		if got := e.Earliest(id(t, c, name)); got != w {
			t.Errorf("earliest(%s) = %s, want %s", name, got, w)
		}
	}
	if e.ShortestPath() != 20 {
		t.Fatalf("shortest path = %s, want 20", e.ShortestPath())
	}
}

func TestEarliestWithUnequalDMin(t *testing.T) {
	b := circuit.NewBuilder("dmin")
	b.Input("a")
	b.Input("b")
	b.Gate(circuit.AND, 10, "x", "a", "b")
	b.Gate(circuit.OR, 10, "z", "x", "b")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Backannotate distinct DMin values.
	x, _ := c.NetByName("x")
	z, _ := c.NetByName("z")
	c.Gate(c.Net(x).Driver).DMin = 4
	c.Gate(c.Net(z).Driver).DMin = 7
	e := NewEarly(c)
	if got := e.Earliest(x); got != 4 {
		t.Fatalf("earliest(x) = %s, want 4", got)
	}
	// z: min(via b directly: 0+7, via x: 4+7) = 7.
	if got := e.Earliest(z); got != 7 {
		t.Fatalf("earliest(z) = %s, want 7", got)
	}
	a := New(c)
	lo, hi := Window(e, a, z)
	if lo != 7 || hi != 20 {
		t.Fatalf("window(z) = [%s,%s], want [7,20]", lo, hi)
	}
	if lo > hi {
		t.Fatal("window must be ordered")
	}
}

func TestEarliestNeverExceedsLatest(t *testing.T) {
	c := c17(t)
	e := NewEarly(c)
	a := New(c)
	for n := 0; n < c.NumNets(); n++ {
		id := circuit.NetID(n)
		if e.Earliest(id) > a.Arrival(id) {
			t.Fatalf("net %s: earliest %s > latest %s", c.Net(id).Name, e.Earliest(id), a.Arrival(id))
		}
	}
}
