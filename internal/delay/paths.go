package delay

import (
	"sort"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

// Path is one structural path from a primary input to a sink net, with
// its length (sum of gate d_max along it).
type Path struct {
	Nets   []circuit.NetID
	Length waveform.Time
}

// KLongestPaths enumerates up to k longest structural paths ending at
// sink, longest first. This is the path-oriented view the paper argues
// is too expensive to enumerate exhaustively — bounded here by k, it
// serves reporting ("which paths would a path-based verifier have to
// refute?") and tests. Ties are broken deterministically by net id.
func KLongestPaths(c *circuit.Circuit, sink circuit.NetID, k int) []Path {
	if k <= 0 {
		return nil
	}
	// Longest distance from every net to the sink, for A*-style
	// ordering of partial paths.
	toSink := ToNet(c, sink)

	// Partial path: built backwards from the sink towards the inputs.
	type partial struct {
		net    circuit.NetID // current frontier (towards inputs)
		suffix []circuit.NetID
		sofar  waveform.Time // length of suffix edges
		potent waveform.Time // sofar + best completion from net
	}
	var heap []partial
	push := func(p partial) { heap = append(heap, p) }
	pop := func() partial {
		best := 0
		for i := range heap {
			if heap[i].potent > heap[best].potent ||
				(heap[i].potent == heap[best].potent && heap[i].net < heap[best].net) {
				best = i
			}
		}
		p := heap[best]
		heap[best] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		return p
	}

	a := New(c)
	push(partial{net: sink, suffix: []circuit.NetID{sink}, sofar: 0, potent: a.Arrival(sink)})
	var out []Path
	for len(heap) > 0 && len(out) < k {
		p := pop()
		drv := c.Net(p.net).Driver
		if drv == circuit.InvalidGate {
			// Complete path; reverse the suffix to PI→sink order.
			nets := make([]circuit.NetID, len(p.suffix))
			for i := range nets {
				nets[i] = p.suffix[len(p.suffix)-1-i]
			}
			out = append(out, Path{Nets: nets, Length: p.sofar})
			continue
		}
		g := c.Gate(drv)
		d := waveform.Time(g.Delay)
		for _, in := range g.Inputs {
			if toSink[in] == waveform.NegInf {
				continue
			}
			suffix := append(append([]circuit.NetID(nil), p.suffix...), in)
			push(partial{
				net:    in,
				suffix: suffix,
				sofar:  p.sofar.Add(d),
				potent: p.sofar.Add(d).Add(a.Arrival(in)),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Length > out[j].Length })
	return out
}

// PathNames renders a path as net names for reports.
func PathNames(c *circuit.Circuit, p Path) []string {
	names := make([]string, len(p.Nets))
	for i, n := range p.Nets {
		names[i] = c.Net(n).Name
	}
	return names
}
