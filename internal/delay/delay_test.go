package delay

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

func c17(t testing.TB) *circuit.Circuit {
	t.Helper()
	src := `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`
	c, err := circuit.ParseBenchString(src, circuit.BenchOptions{DefaultDelay: 10, Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func id(t testing.TB, c *circuit.Circuit, name string) circuit.NetID {
	t.Helper()
	n, ok := c.NetByName(name)
	if !ok {
		t.Fatalf("no net %q", name)
	}
	return n
}

func TestArrivalC17(t *testing.T) {
	c := c17(t)
	a := New(c)
	want := map[string]waveform.Time{
		"G1": 0, "G2": 0, "G3": 0, "G6": 0, "G7": 0,
		"G10": 10, "G11": 10, "G16": 20, "G19": 20, "G22": 30, "G23": 30,
	}
	for name, w := range want {
		if got := a.Arrival(id(t, c, name)); got != w {
			t.Errorf("arrival(%s) = %s, want %s", name, got, w)
		}
	}
	if a.Topological() != 30 {
		t.Fatalf("top = %s, want 30", a.Topological())
	}
}

func TestToNet(t *testing.T) {
	c := c17(t)
	d := ToNet(c, id(t, c, "G22"))
	want := map[string]waveform.Time{
		"G22": 0, "G10": 10, "G16": 10, "G11": 20, "G2": 20,
		"G1": 20, "G3": 30, "G6": 30,
	}
	for name, w := range want {
		if got := d[id(t, c, name)]; got != w {
			t.Errorf("toNet(%s→G22) = %s, want %s", name, got, w)
		}
	}
	for _, name := range []string{"G7", "G19", "G23"} {
		if got := d[id(t, c, name)]; got != waveform.NegInf {
			t.Errorf("toNet(%s→G22) = %s, want -inf (no path)", name, got)
		}
	}
}

func TestSTARun(t *testing.T) {
	c := c17(t)
	s := Run(c, 25)
	if len(s.OutputArrival) != 2 || s.OutputArrival[0] != 30 || s.OutputArrival[1] != 30 {
		t.Fatalf("arrivals = %v", s.OutputArrival)
	}
	if s.OutputSlack[0] != -5 {
		t.Fatalf("slack = %v", s.OutputSlack)
	}
	// Critical path: from a PI to the worst PO, consistent arrivals.
	cp := s.CriticalPath
	if len(cp) == 0 {
		t.Fatal("no critical path")
	}
	first, last := c.Net(cp[0]), c.Net(cp[len(cp)-1])
	if !first.IsPI {
		t.Fatalf("critical path must start at a PI, starts at %s", first.Name)
	}
	if !last.IsPO {
		t.Fatalf("critical path must end at a PO, ends at %s", last.Name)
	}
	a := New(c)
	for i := 1; i < len(cp); i++ {
		g := c.Gate(c.Net(cp[i]).Driver)
		if a.Arrival(cp[i-1]).Add(waveform.Time(g.Delay)) != a.Arrival(cp[i]) {
			t.Fatalf("critical path arrival inconsistent at %s", c.Net(cp[i]).Name)
		}
	}
	if a.Arrival(cp[len(cp)-1]) != 30 {
		t.Fatal("critical path must realise the topological delay")
	}
}

func TestStaticCarrierMask(t *testing.T) {
	c := c17(t)
	a := New(c)
	g22 := id(t, c, "G22")
	// δ = 30: only nets on a full-length (30) path through G22 qualify.
	mask := StaticCarrierMask(c, a, g22, 30)
	wantTrue := []string{"G3", "G6", "G11", "G16", "G22"}
	for _, n := range wantTrue {
		if !mask[id(t, c, n)] {
			t.Errorf("%s must be a static carrier at δ=30", n)
		}
	}
	// G2's longest path through G22 is 0 + 20 = 20 < 30.
	for _, n := range []string{"G1", "G2", "G10"} {
		if mask[id(t, c, n)] {
			t.Errorf("%s (longest path 20) must not be a static carrier at δ=30", n)
		}
	}
	if mask[id(t, c, "G23")] || mask[id(t, c, "G19")] || mask[id(t, c, "G7")] {
		t.Error("nets with no path to G22 must not be carriers")
	}
	// δ = 20: G1 and G10 (path length 20 via G1→G10→G22) now qualify.
	mask20 := StaticCarrierMask(c, a, g22, 20)
	for _, n := range []string{"G1", "G10", "G2", "G16"} {
		if !mask20[id(t, c, n)] {
			t.Errorf("%s must be a static carrier at δ=20", n)
		}
	}
	// δ beyond top: nothing qualifies.
	mask99 := StaticCarrierMask(c, a, g22, 99)
	for i := range mask99 {
		if mask99[i] {
			t.Fatalf("no net can carry a 99-long path, but %s does", c.Net(circuit.NetID(i)).Name)
		}
	}
}
