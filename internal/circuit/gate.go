// Package circuit provides the gate-level combinational netlist
// substrate: the gate library of the paper (AND, NAND, OR, NOR, NOT,
// BUFFER, DELAY, XOR, XNOR), a directed-acyclic netlist with named
// nets, construction and validation, topological ordering, structural
// analyses (fanout, reconvergence), and an ISCAS-style ".bench" reader
// and writer.
package circuit

import "fmt"

// GateType enumerates the gate library of Section 2 of the paper.
type GateType uint8

const (
	// AND outputs 1 iff all inputs are 1. Controlling value 0.
	AND GateType = iota
	// NAND is the inverted AND. Controlling value 0.
	NAND
	// OR outputs 1 iff any input is 1. Controlling value 1.
	OR
	// NOR is the inverted OR. Controlling value 1.
	NOR
	// NOT inverts its single input.
	NOT
	// BUFFER repeats its single input.
	BUFFER
	// DELAY repeats its single input; by the paper's convention it is
	// the element that carries path delay, but this implementation lets
	// every gate carry a delay, so DELAY is a named BUFFER.
	DELAY
	// XOR outputs the parity of its inputs. No controlling value.
	XOR
	// XNOR outputs the inverted parity. No controlling value.
	XNOR
)

var gateNames = [...]string{
	AND: "AND", NAND: "NAND", OR: "OR", NOR: "NOR",
	NOT: "NOT", BUFFER: "BUFF", DELAY: "DELAY", XOR: "XOR", XNOR: "XNOR",
}

// String returns the canonical upper-case mnemonic used by .bench files.
func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// ParseGateType recognises the .bench mnemonics (case-insensitive;
// BUF and BUFF both accepted).
func ParseGateType(s string) (GateType, bool) {
	switch upper(s) {
	case "AND":
		return AND, true
	case "NAND":
		return NAND, true
	case "OR":
		return OR, true
	case "NOR":
		return NOR, true
	case "NOT", "INV":
		return NOT, true
	case "BUF", "BUFF", "BUFFER":
		return BUFFER, true
	case "DELAY", "DEL":
		return DELAY, true
	case "XOR":
		return XOR, true
	case "XNOR":
		return XNOR, true
	}
	return 0, false
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// Inverting reports whether the gate complements its underlying
// monotone/parity function (NAND, NOR, NOT, XNOR).
func (t GateType) Inverting() bool {
	switch t {
	case NAND, NOR, NOT, XNOR:
		return true
	}
	return false
}

// HasControlling reports whether the gate has a controlling input value
// and returns it. Parity gates and single-input gates have none.
func (t GateType) HasControlling() (int, bool) {
	switch t {
	case AND, NAND:
		return 0, true
	case OR, NOR:
		return 1, true
	}
	return 0, false
}

// Unate reports whether the gate is a single-input gate (NOT, BUFFER,
// DELAY).
func (t GateType) Unate() bool {
	switch t {
	case NOT, BUFFER, DELAY:
		return true
	}
	return false
}

// Parity reports whether the gate computes (possibly inverted) parity.
func (t GateType) Parity() bool { return t == XOR || t == XNOR }

// Eval computes the Boolean function of the gate on the given input
// values (each 0 or 1).
func (t GateType) Eval(in []int) int {
	switch t {
	case AND, NAND:
		v := 1
		for _, x := range in {
			v &= x
		}
		if t == NAND {
			v ^= 1
		}
		return v
	case OR, NOR:
		v := 0
		for _, x := range in {
			v |= x
		}
		if t == NOR {
			v ^= 1
		}
		return v
	case NOT:
		return in[0] ^ 1
	case BUFFER, DELAY:
		return in[0]
	case XOR, XNOR:
		v := 0
		for _, x := range in {
			v ^= x
		}
		if t == XNOR {
			v ^= 1
		}
		return v
	}
	panic(fmt.Sprintf("circuit: Eval of unknown gate type %d", uint8(t)))
}

// MinInputs returns the smallest legal fan-in for the gate type.
// Multi-input types degenerate gracefully with one input (a 1-input
// AND/OR/XOR is a buffer, a 1-input NAND/NOR/XNOR an inverter), which
// technology-mapping passes rely on.
func (t GateType) MinInputs() int { return 1 }

// MaxInputs returns the largest legal fan-in: 1 for unate gates, 16
// for parity gates (whose timing constraint enumerates class
// combinations — decompose wider parities into trees, as MapToNOR and
// the generators do), unbounded otherwise.
func (t GateType) MaxInputs() int {
	switch {
	case t.Unate():
		return 1
	case t.Parity():
		return 16
	default:
		return 1 << 20
	}
}
