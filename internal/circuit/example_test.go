package circuit_test

import (
	"fmt"

	"repro/internal/circuit"
)

// ExampleBuilder shows netlist construction and .bench round-tripping.
func ExampleBuilder() {
	b := circuit.NewBuilder("demo")
	b.Input("a")
	b.Input("b")
	b.Gate(circuit.NAND, 10, "x", "a", "b")
	b.Gate(circuit.NOT, 5, "z", "x")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Print(circuit.BenchString(c))
	// Output:
	// # circuit demo: 2 gates, 4 nets
	// INPUT(a)
	// INPUT(b)
	// OUTPUT(z)
	// x = NAND(a, b) # !delay=10
	// z = NOT(x) # !delay=5
}

// ExampleMapToNOR demonstrates the technology-mapping pass the paper's
// experiments use (NOR implementations with uniform delay).
func ExampleMapToNOR() {
	b := circuit.NewBuilder("tiny")
	b.Input("a")
	b.Input("b")
	b.Gate(circuit.AND, 1, "z", "a", "b")
	b.Output("z")
	c, _ := b.Build()
	n, err := circuit.MapToNOR(c, 10)
	if err != nil {
		panic(err)
	}
	fmt.Println("gates:", n.NumGates(), "— all NOR with d=10")
	// Output:
	// gates: 3 — all NOR with d=10
}
