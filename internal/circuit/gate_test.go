package circuit

import "testing"

func TestGateTypeString(t *testing.T) {
	cases := map[GateType]string{
		AND: "AND", NAND: "NAND", OR: "OR", NOR: "NOR", NOT: "NOT",
		BUFFER: "BUFF", DELAY: "DELAY", XOR: "XOR", XNOR: "XNOR",
	}
	for gt, want := range cases {
		if gt.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(gt), gt.String(), want)
		}
	}
}

func TestParseGateType(t *testing.T) {
	cases := map[string]GateType{
		"AND": AND, "and": AND, "NAND": NAND, "OR": OR, "NOR": NOR,
		"NOT": NOT, "INV": NOT, "not": NOT,
		"BUF": BUFFER, "BUFF": BUFFER, "BUFFER": BUFFER,
		"DELAY": DELAY, "DEL": DELAY, "XOR": XOR, "xnor": XNOR,
	}
	for s, want := range cases {
		got, ok := ParseGateType(s)
		if !ok || got != want {
			t.Errorf("ParseGateType(%q) = %v,%v want %v", s, got, ok, want)
		}
	}
	if _, ok := ParseGateType("MYSTERY"); ok {
		t.Error("unknown mnemonic must not parse")
	}
}

func TestGateTypeClassification(t *testing.T) {
	for _, gt := range []GateType{NAND, NOR, NOT, XNOR} {
		if !gt.Inverting() {
			t.Errorf("%s must be inverting", gt)
		}
	}
	for _, gt := range []GateType{AND, OR, BUFFER, DELAY, XOR} {
		if gt.Inverting() {
			t.Errorf("%s must not be inverting", gt)
		}
	}
	if c, ok := AND.HasControlling(); !ok || c != 0 {
		t.Error("AND controlling must be 0")
	}
	if c, ok := NOR.HasControlling(); !ok || c != 1 {
		t.Error("NOR controlling must be 1")
	}
	if _, ok := XOR.HasControlling(); ok {
		t.Error("XOR has no controlling value")
	}
	if _, ok := NOT.HasControlling(); ok {
		t.Error("NOT has no controlling value")
	}
	if !NOT.Unate() || !BUFFER.Unate() || !DELAY.Unate() || AND.Unate() {
		t.Error("Unate classification wrong")
	}
	if !XOR.Parity() || !XNOR.Parity() || OR.Parity() {
		t.Error("Parity classification wrong")
	}
}

func TestGateTypeEvalTruthTables(t *testing.T) {
	two := [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	want := map[GateType][]int{
		AND:  {0, 0, 0, 1},
		NAND: {1, 1, 1, 0},
		OR:   {0, 1, 1, 1},
		NOR:  {1, 0, 0, 0},
		XOR:  {0, 1, 1, 0},
		XNOR: {1, 0, 0, 1},
	}
	for gt, outs := range want {
		for i, in := range two {
			if got := gt.Eval(in); got != outs[i] {
				t.Errorf("%s%v = %d, want %d", gt, in, got, outs[i])
			}
		}
	}
	if NOT.Eval([]int{0}) != 1 || NOT.Eval([]int{1}) != 0 {
		t.Error("NOT truth table wrong")
	}
	if BUFFER.Eval([]int{1}) != 1 || DELAY.Eval([]int{0}) != 0 {
		t.Error("BUFFER/DELAY truth table wrong")
	}
	// 3-input sanity.
	if AND.Eval([]int{1, 1, 0}) != 0 || OR.Eval([]int{0, 0, 1}) != 1 {
		t.Error("3-input eval wrong")
	}
	if XOR.Eval([]int{1, 1, 1}) != 1 || XNOR.Eval([]int{1, 1, 1}) != 0 {
		t.Error("3-input parity wrong")
	}
	// Degenerate 1-input forms.
	if AND.Eval([]int{1}) != 1 || NAND.Eval([]int{1}) != 0 || NOR.Eval([]int{0}) != 1 {
		t.Error("1-input degenerate eval wrong")
	}
}
