package circuit

import (
	"fmt"
	"sort"
)

// NetID identifies a net (an edge of the circuit graph). Nets are
// delayless; delays live on gates.
type NetID int32

// GateID identifies a gate (a vertex of the circuit graph).
type GateID int32

// InvalidNet marks the absence of a net.
const InvalidNet NetID = -1

// InvalidGate marks the absence of a gate.
const InvalidGate GateID = -1

// Gate is one vertex of the combinational circuit: a Boolean function
// of its input nets driving a single output net after Delay time units
// (the d_max bound; DMin is kept for completeness but the floating-mode
// maximum-delay calculation uses only Delay, as in the paper).
type Gate struct {
	ID     GateID
	Type   GateType
	Inputs []NetID
	Output NetID
	Delay  int64 // d_max
	DMin   int64 // d_min (informational)
}

// Net is one edge of the circuit graph. A net is driven by at most one
// gate (Driver == InvalidGate for primary inputs) and fans out to any
// number of gate inputs.
type Net struct {
	ID     NetID
	Name   string
	Driver GateID   // driving gate, InvalidGate for primary inputs
	Fanout []GateID // gates having this net as an input
	IsPI   bool
	IsPO   bool
}

// Circuit is an immutable-after-Build combinational netlist. Use
// Builder to construct one.
type Circuit struct {
	Name  string
	nets  []Net
	gates []Gate
	byNam map[string]NetID

	pis []NetID
	pos []NetID

	topoGates []GateID // gates in topological (fanin-first) order
	netLevel  []int32  // levelisation: PI nets at 0, net level = 1+max(input levels) of driver
}

// NumNets returns the number of nets.
func (c *Circuit) NumNets() int { return len(c.nets) }

// NumGates returns the number of gates.
func (c *Circuit) NumGates() int { return len(c.gates) }

// Net returns the net with the given id.
func (c *Circuit) Net(id NetID) *Net { return &c.nets[id] }

// Gate returns the gate with the given id.
func (c *Circuit) Gate(id GateID) *Gate { return &c.gates[id] }

// NetByName looks a net up by name.
func (c *Circuit) NetByName(name string) (NetID, bool) {
	id, ok := c.byNam[name]
	return id, ok
}

// PrimaryInputs returns the primary input nets in declaration order.
func (c *Circuit) PrimaryInputs() []NetID { return c.pis }

// PrimaryOutputs returns the primary output nets in declaration order.
func (c *Circuit) PrimaryOutputs() []NetID { return c.pos }

// TopoGates returns the gates in a topological order: every gate
// appears after the drivers of all its inputs.
func (c *Circuit) TopoGates() []GateID { return c.topoGates }

// Level returns the levelisation of net n: primary inputs are at level
// 0 and a driven net is one more than the maximum level of its driver's
// inputs.
func (c *Circuit) Level(n NetID) int { return int(c.netLevel[n]) }

// MaxLevel returns the largest net level in the circuit.
func (c *Circuit) MaxLevel() int {
	m := 0
	for _, l := range c.netLevel {
		if int(l) > m {
			m = int(l)
		}
	}
	return m
}

// FanoutCount returns the number of gate inputs net n feeds.
func (c *Circuit) FanoutCount(n NetID) int { return len(c.nets[n].Fanout) }

// IsStem reports whether net n is a fanout stem (fans out to two or
// more gate inputs).
func (c *Circuit) IsStem(n NetID) bool { return len(c.nets[n].Fanout) >= 2 }

// Builder incrementally constructs a Circuit. The zero value is not
// usable; create one with NewBuilder.
type Builder struct {
	c    *Circuit
	errs []error
}

// NewBuilder returns an empty builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{c: &Circuit{Name: name, byNam: map[string]NetID{}}}
}

// Net returns the id of the named net, creating it if necessary.
func (b *Builder) Net(name string) NetID {
	if id, ok := b.c.byNam[name]; ok {
		return id
	}
	id := NetID(len(b.c.nets))
	b.c.nets = append(b.c.nets, Net{ID: id, Name: name, Driver: InvalidGate})
	b.c.byNam[name] = id
	return id
}

// Input declares the named net as a primary input and returns its id.
func (b *Builder) Input(name string) NetID {
	id := b.Net(name)
	if !b.c.nets[id].IsPI {
		b.c.nets[id].IsPI = true
		b.c.pis = append(b.c.pis, id)
	}
	return id
}

// Output declares the named net as a primary output and returns its id.
func (b *Builder) Output(name string) NetID {
	id := b.Net(name)
	if !b.c.nets[id].IsPO {
		b.c.nets[id].IsPO = true
		b.c.pos = append(b.c.pos, id)
	}
	return id
}

// Gate adds a gate of the given type with delay d driving net out from
// the given inputs, and returns the output net id.
func (b *Builder) Gate(t GateType, d int64, out string, in ...string) NetID {
	ins := make([]NetID, len(in))
	for i, n := range in {
		ins[i] = b.Net(n)
	}
	o := b.Net(out)
	b.addGate(t, d, o, ins)
	return o
}

// GateIDs is Gate with pre-resolved net ids.
func (b *Builder) GateIDs(t GateType, d int64, out NetID, in ...NetID) {
	b.addGate(t, d, out, append([]NetID(nil), in...))
}

func (b *Builder) addGate(t GateType, d int64, out NetID, ins []NetID) {
	if len(ins) < t.MinInputs() || len(ins) > t.MaxInputs() {
		b.errs = append(b.errs, fmt.Errorf("circuit %q: gate %s driving %q has %d inputs",
			b.c.Name, t, b.c.nets[out].Name, len(ins)))
	}
	if d < 0 {
		b.errs = append(b.errs, fmt.Errorf("circuit %q: gate driving %q has negative delay %d",
			b.c.Name, b.c.nets[out].Name, d))
	}
	if b.c.nets[out].Driver != InvalidGate {
		b.errs = append(b.errs, fmt.Errorf("circuit %q: net %q driven twice",
			b.c.Name, b.c.nets[out].Name))
		return
	}
	g := Gate{ID: GateID(len(b.c.gates)), Type: t, Inputs: ins, Output: out, Delay: d, DMin: d}
	b.c.gates = append(b.c.gates, g)
	b.c.nets[out].Driver = g.ID
	for _, in := range ins {
		b.c.nets[in].Fanout = append(b.c.nets[in].Fanout, g.ID)
	}
}

// MUX adds a 2:1 multiplexer out = sel ? a1 : a0, lowered into the base
// gate library (two ANDs, a NOT and an OR, each with delay d), and
// returns the output net id. The intermediate nets are named after out.
func (b *Builder) MUX(d int64, out, sel, a0, a1 string) NetID {
	nsel := out + "$nsel"
	t0 := out + "$t0"
	t1 := out + "$t1"
	b.Gate(NOT, d, nsel, sel)
	b.Gate(AND, d, t0, nsel, a0)
	b.Gate(AND, d, t1, sel, a1)
	return b.Gate(OR, d, out, t0, t1)
}

// Build validates the netlist (single drivers, declared PIs, acyclic)
// and freezes it. It returns an error describing the first problems
// found.
func (b *Builder) Build() (*Circuit, error) {
	c := b.c
	errs := b.errs
	for i := range c.nets {
		n := &c.nets[i]
		if n.Driver == InvalidGate && !n.IsPI {
			errs = append(errs, fmt.Errorf("circuit %q: net %q has no driver and is not a primary input", c.Name, n.Name))
		}
		if n.Driver != InvalidGate && n.IsPI {
			errs = append(errs, fmt.Errorf("circuit %q: primary input %q is driven by a gate", c.Name, n.Name))
		}
	}
	if len(c.pos) == 0 {
		errs = append(errs, fmt.Errorf("circuit %q: no primary outputs declared", c.Name))
	}
	if err := c.computeTopo(); err != nil {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return nil, fmt.Errorf("circuit build failed: %v", errs[0])
	}
	return c, nil
}

// computeTopo performs Kahn's algorithm over gates and levelises nets;
// it fails if the netlist contains a cycle.
func (c *Circuit) computeTopo() error {
	indeg := make([]int32, len(c.gates))
	for i := range c.gates {
		for _, in := range c.gates[i].Inputs {
			if c.nets[in].Driver != InvalidGate {
				indeg[i]++
			}
		}
	}
	queue := make([]GateID, 0, len(c.gates))
	for i := range c.gates {
		if indeg[i] == 0 {
			queue = append(queue, GateID(i))
		}
	}
	c.topoGates = c.topoGates[:0]
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		c.topoGates = append(c.topoGates, g)
		out := c.gates[g].Output
		for _, succ := range c.nets[out].Fanout {
			indeg[succ]--
			if indeg[succ] == 0 {
				queue = append(queue, succ)
			}
		}
	}
	if len(c.topoGates) != len(c.gates) {
		return fmt.Errorf("circuit %q: combinational netlist contains a cycle", c.Name)
	}
	c.netLevel = make([]int32, len(c.nets))
	for _, gid := range c.topoGates {
		g := &c.gates[gid]
		lvl := int32(0)
		for _, in := range g.Inputs {
			if c.netLevel[in] >= lvl {
				lvl = c.netLevel[in] + 1
			}
		}
		if c.netLevel[g.Output] < lvl {
			c.netLevel[g.Output] = lvl
		}
	}
	return nil
}

// TransitiveFanin returns the set of nets in the fan-in cone of net n
// (including n itself), as a boolean slice indexed by NetID.
func (c *Circuit) TransitiveFanin(n NetID) []bool {
	seen := make([]bool, len(c.nets))
	stack := []NetID{n}
	seen[n] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d := c.nets[x].Driver; d != InvalidGate {
			for _, in := range c.gates[d].Inputs {
				if !seen[in] {
					seen[in] = true
					stack = append(stack, in)
				}
			}
		}
	}
	return seen
}

// TransitiveFanout returns the set of nets reachable from net n
// (including n itself), as a boolean slice indexed by NetID.
func (c *Circuit) TransitiveFanout(n NetID) []bool {
	seen := make([]bool, len(c.nets))
	stack := []NetID{n}
	seen[n] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, g := range c.nets[x].Fanout {
			o := c.gates[g].Output
			if !seen[o] {
				seen[o] = true
				stack = append(stack, o)
			}
		}
	}
	return seen
}

// ReconvergentStems returns the fanout stems whose branches reconverge:
// nets with fanout ≥ 2 from which at least one net is reachable along
// two edge-disjoint first hops (i.e. reachable from two different
// fanout branches). They are the stems subjected to stem correlation in
// Section 5 of the paper.
func (c *Circuit) ReconvergentStems() []NetID {
	var stems []NetID
	reach := make([]int32, len(c.nets)) // visit stamp per net
	stamp := int32(0)
	for i := range c.nets {
		n := &c.nets[i]
		if len(n.Fanout) < 2 {
			continue
		}
		// Mark nets reachable from each branch; a net reached by two
		// different branches proves reconvergence.
		stamp++
		base := stamp
		recon := false
	branches:
		for _, g := range n.Fanout {
			start := c.gates[g].Output
			stack := []NetID{start}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if reach[x] >= base {
					if reach[x] != stamp { // reached by an earlier branch
						recon = true
						break branches
					}
					continue
				}
				reach[x] = stamp
				for _, fg := range c.nets[x].Fanout {
					stack = append(stack, c.gates[fg].Output)
				}
			}
			stamp++
		}
		if recon {
			stems = append(stems, n.ID)
		}
	}
	return stems
}

// Stats summarises the netlist for reports.
type Stats struct {
	Nets, Gates, PIs, POs int
	MaxFanin, MaxFanout   int
	Levels                int
}

// Stats computes summary statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{Nets: len(c.nets), Gates: len(c.gates), PIs: len(c.pis), POs: len(c.pos), Levels: c.MaxLevel()}
	for i := range c.gates {
		if len(c.gates[i].Inputs) > s.MaxFanin {
			s.MaxFanin = len(c.gates[i].Inputs)
		}
	}
	for i := range c.nets {
		if len(c.nets[i].Fanout) > s.MaxFanout {
			s.MaxFanout = len(c.nets[i].Fanout)
		}
	}
	return s
}
