package circuit

import "fmt"

// MapToNOR rewrites the circuit into an equivalent one built only from
// NOR gates (arbitrary fan-in, 1-input NOR acting as inverter), each
// with uniform maximum delay d. The paper's experiments run on NOR-gate
// implementations of the ISCAS'85 benchmarks with a delay of 10 on the
// output of every gate; this pass produces such implementations from
// any netlist in the base library.
func MapToNOR(c *Circuit, d int64) (*Circuit, error) {
	b := NewBuilder(c.Name + "_nor")
	for _, pi := range c.PrimaryInputs() {
		b.Input(c.Net(pi).Name)
	}
	aux := 0
	fresh := func(base string) string {
		aux++
		return fmt.Sprintf("%s$n%d", base, aux)
	}
	// inv emits NOR(x) and returns the inverted net's name.
	inv := func(x, base string) string {
		o := fresh(base)
		b.Gate(NOR, d, o, x)
		return o
	}
	// xorPair emits a 4-NOR XNOR of two nets and returns (xnorNet).
	xnorPair := func(x, y, base string) string {
		n1 := fresh(base)
		b.Gate(NOR, d, n1, x, y)
		n2 := fresh(base)
		b.Gate(NOR, d, n2, x, n1)
		n3 := fresh(base)
		b.Gate(NOR, d, n3, y, n1)
		n4 := fresh(base)
		b.Gate(NOR, d, n4, n2, n3)
		return n4
	}
	for _, gid := range c.TopoGates() {
		g := c.Gate(gid)
		out := c.Net(g.Output).Name
		in := make([]string, len(g.Inputs))
		for i, n := range g.Inputs {
			in[i] = c.Net(n).Name
		}
		switch g.Type {
		case NOR:
			b.Gate(NOR, d, out, in...)
		case OR:
			t := fresh(out)
			b.Gate(NOR, d, t, in...)
			b.Gate(NOR, d, out, t)
		case NOT:
			b.Gate(NOR, d, out, in[0])
		case BUFFER, DELAY:
			b.Gate(NOR, d, out, inv(in[0], out))
		case AND:
			invs := make([]string, len(in))
			for i, x := range in {
				invs[i] = inv(x, out)
			}
			b.Gate(NOR, d, out, invs...)
		case NAND:
			invs := make([]string, len(in))
			for i, x := range in {
				invs[i] = inv(x, out)
			}
			t := fresh(out)
			b.Gate(NOR, d, t, invs...)
			b.Gate(NOR, d, out, t)
		case XOR, XNOR:
			// Left-to-right chain of 2-input XNOR cells with parity
			// bookkeeping: xnorPair computes XNOR, so track how many
			// inversions have accumulated and fix up at the end.
			cur := in[0]
			inverted := false // cur currently holds complement of running XOR?
			for i := 1; i < len(in); i++ {
				cur = xnorPair(cur, in[i], out)
				inverted = !inverted // XNOR(cur, x) = NOT(XOR(cur, x))
			}
			wantInverted := g.Type == XNOR
			if len(in) == 1 {
				if wantInverted {
					b.Gate(NOR, d, out, cur)
				} else {
					b.Gate(NOR, d, out, inv(cur, out))
				}
				break
			}
			if inverted == wantInverted {
				b.Gate(NOR, d, out, inv(cur, out)) // double inversion = buffer
			} else {
				b.Gate(NOR, d, out, cur)
			}
		default:
			return nil, fmt.Errorf("MapToNOR: unsupported gate type %s", g.Type)
		}
	}
	for _, po := range c.PrimaryOutputs() {
		b.Output(c.Net(po).Name)
	}
	return b.Build()
}

// ExtractCone returns the transitive fan-in cone of the given net as a
// standalone circuit: the net becomes the single primary output, the
// cone's primary inputs are kept, and everything outside the cone is
// dropped. Timing checks on the cone are equivalent to checks on the
// original output (the check only constrains the cone), which makes
// this the standard debugging and speed lever for single-output
// verification on wide designs.
func ExtractCone(c *Circuit, sink NetID) (*Circuit, error) {
	cone, _, err := ExtractConeMapped(c, sink)
	return cone, err
}

// ConeMap relates a cone slice produced by ExtractConeMapped to the
// circuit it was cut from.
type ConeMap struct {
	// ToCone maps original net ids to cone net ids; InvalidNet for nets
	// outside the cone.
	ToCone []NetID
	// FromCone maps cone net ids back to original ids. The cone
	// declares its nets in increasing original-id order, so FromCone is
	// strictly increasing: every relative id comparison (decision
	// tie-breaks, stem ordering, objective sorts) agrees between the
	// cone and the original circuit.
	FromCone []NetID
	// PIIndex maps cone primary-input positions to original
	// primary-input positions, for test-vector translation.
	PIIndex []int
	// Sink is the cone-local id of the extracted output.
	Sink NetID
}

// ExtractConeMapped is ExtractCone returning, in addition, the net-id
// translation between the cone and the original circuit. The slice
// preserves everything a timing check observes: gate types and both
// delay bounds (d_max and d_min), primary-input status, topological
// gate order, and the relative order of net ids.
func ExtractConeMapped(c *Circuit, sink NetID) (*Circuit, *ConeMap, error) {
	mask := c.TransitiveFanin(sink)
	b := NewBuilder(c.Name + "_cone_" + c.Net(sink).Name)
	// Declare every cone net in increasing original-id order before any
	// gate mentions it, so cone ids are assigned in that same order.
	for i := range mask {
		if !mask[i] {
			continue
		}
		n := c.Net(NetID(i))
		if n.IsPI {
			b.Input(n.Name)
		} else {
			b.Net(n.Name)
		}
	}
	for _, gid := range c.TopoGates() {
		g := c.Gate(gid)
		if !mask[g.Output] {
			continue
		}
		in := make([]string, len(g.Inputs))
		for i, n := range g.Inputs {
			in[i] = c.Net(n).Name
		}
		b.Gate(g.Type, g.Delay, c.Net(g.Output).Name, in...)
	}
	b.Output(c.Net(sink).Name)
	cone, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	// Builder.Gate defaults d_min to the d_max argument; carry over the
	// original bounds (SDF back-annotation can set them apart). Cone
	// gate ids follow insertion order, which is the masked original
	// topological order above.
	j := GateID(0)
	for _, gid := range c.TopoGates() {
		g := c.Gate(gid)
		if !mask[g.Output] {
			continue
		}
		cone.Gate(j).DMin = g.DMin
		j++
	}
	cm := &ConeMap{
		ToCone:   make([]NetID, c.NumNets()),
		FromCone: make([]NetID, cone.NumNets()),
	}
	for i := range cm.ToCone {
		cm.ToCone[i] = InvalidNet
	}
	for i := range mask {
		if !mask[i] {
			continue
		}
		id, ok := cone.NetByName(c.Net(NetID(i)).Name)
		if !ok {
			return nil, nil, fmt.Errorf("ExtractConeMapped: cone of %q lost net %q",
				c.Net(sink).Name, c.Net(NetID(i)).Name)
		}
		cm.ToCone[i] = id
		cm.FromCone[id] = NetID(i)
	}
	origPIPos := make(map[NetID]int, len(c.PrimaryInputs()))
	for i, pi := range c.PrimaryInputs() {
		origPIPos[pi] = i
	}
	cm.PIIndex = make([]int, len(cone.PrimaryInputs()))
	for i, pi := range cone.PrimaryInputs() {
		cm.PIIndex[i] = origPIPos[cm.FromCone[pi]]
	}
	cm.Sink = cm.ToCone[sink]
	return cone, cm, nil
}

// WithUniformDelay returns a copy of the circuit with every gate's
// maximum delay replaced by d.
func WithUniformDelay(c *Circuit, d int64) (*Circuit, error) {
	b := NewBuilder(c.Name)
	for _, pi := range c.PrimaryInputs() {
		b.Input(c.Net(pi).Name)
	}
	for _, gid := range c.TopoGates() {
		g := c.Gate(gid)
		in := make([]string, len(g.Inputs))
		for i, n := range g.Inputs {
			in[i] = c.Net(n).Name
		}
		b.Gate(g.Type, d, c.Net(g.Output).Name, in...)
	}
	for _, po := range c.PrimaryOutputs() {
		b.Output(c.Net(po).Name)
	}
	return b.Build()
}
