package circuit

import (
	"strings"
	"testing"
)

// buildC17 constructs the ISCAS'85 c17 netlist (the one benchmark small
// enough to be fully public knowledge): six 2-input NANDs.
func buildC17(t testing.TB, delay int64) *Circuit {
	t.Helper()
	b := NewBuilder("c17")
	for _, n := range []string{"G1", "G2", "G3", "G6", "G7"} {
		b.Input(n)
	}
	b.Gate(NAND, delay, "G10", "G1", "G3")
	b.Gate(NAND, delay, "G11", "G3", "G6")
	b.Gate(NAND, delay, "G16", "G2", "G11")
	b.Gate(NAND, delay, "G19", "G11", "G7")
	b.Gate(NAND, delay, "G22", "G10", "G16")
	b.Gate(NAND, delay, "G23", "G16", "G19")
	b.Output("G22")
	b.Output("G23")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("c17 build: %v", err)
	}
	return c
}

func TestBuilderBasic(t *testing.T) {
	c := buildC17(t, 10)
	if c.NumGates() != 6 {
		t.Fatalf("gates = %d", c.NumGates())
	}
	if c.NumNets() != 11 {
		t.Fatalf("nets = %d", c.NumNets())
	}
	if len(c.PrimaryInputs()) != 5 || len(c.PrimaryOutputs()) != 2 {
		t.Fatal("PI/PO counts wrong")
	}
	id, ok := c.NetByName("G16")
	if !ok {
		t.Fatal("G16 missing")
	}
	if c.Net(id).Driver == InvalidGate {
		t.Fatal("G16 must be driven")
	}
	if got := c.FanoutCount(id); got != 2 {
		t.Fatalf("fanout of G16 = %d, want 2", got)
	}
	if !c.IsStem(id) {
		t.Fatal("G16 is a fanout stem")
	}
}

func TestBuilderErrors(t *testing.T) {
	// Doubly driven net.
	b := NewBuilder("bad")
	b.Input("a")
	b.Input("b")
	b.Gate(AND, 1, "x", "a", "b")
	b.Gate(OR, 1, "x", "a", "b")
	b.Output("x")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "driven twice") {
		t.Fatalf("want driven-twice error, got %v", err)
	}

	// Undriven non-input net.
	b = NewBuilder("bad2")
	b.Input("a")
	b.Gate(AND, 1, "x", "a", "ghost")
	b.Output("x")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no driver") {
		t.Fatalf("want no-driver error, got %v", err)
	}

	// Driven primary input.
	b = NewBuilder("bad3")
	b.Input("a")
	b.Input("x")
	b.Gate(NOT, 1, "x", "a")
	b.Output("x")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "driven by a gate") {
		t.Fatalf("want driven-PI error, got %v", err)
	}

	// No outputs.
	b = NewBuilder("bad4")
	b.Input("a")
	b.Gate(NOT, 1, "x", "a")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no primary outputs") {
		t.Fatalf("want no-PO error, got %v", err)
	}

	// Negative delay.
	b = NewBuilder("bad5")
	b.Input("a")
	b.Gate(NOT, -3, "x", "a")
	b.Output("x")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "negative delay") {
		t.Fatalf("want negative-delay error, got %v", err)
	}
}

func TestCycleDetection(t *testing.T) {
	b := NewBuilder("cyc")
	b.Input("a")
	b.Gate(AND, 1, "x", "a", "y")
	b.Gate(AND, 1, "y", "a", "x")
	b.Output("x")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestTopoOrder(t *testing.T) {
	c := buildC17(t, 10)
	pos := map[GateID]int{}
	for i, g := range c.TopoGates() {
		pos[g] = i
	}
	if len(pos) != c.NumGates() {
		t.Fatal("topo order must cover all gates")
	}
	for i := 0; i < c.NumGates(); i++ {
		g := c.Gate(GateID(i))
		for _, in := range g.Inputs {
			if d := c.Net(in).Driver; d != InvalidGate {
				if pos[d] >= pos[g.ID] {
					t.Fatalf("gate %d before its driver %d", g.ID, d)
				}
			}
		}
	}
}

func TestLevels(t *testing.T) {
	c := buildC17(t, 10)
	lvl := func(n string) int {
		id, _ := c.NetByName(n)
		return c.Level(id)
	}
	if lvl("G1") != 0 || lvl("G10") != 1 || lvl("G16") != 2 || lvl("G22") != 3 {
		t.Fatalf("levels: G1=%d G10=%d G16=%d G22=%d", lvl("G1"), lvl("G10"), lvl("G16"), lvl("G22"))
	}
	if c.MaxLevel() != 3 {
		t.Fatalf("MaxLevel = %d", c.MaxLevel())
	}
}

func TestTransitiveFaninFanout(t *testing.T) {
	c := buildC17(t, 10)
	g22, _ := c.NetByName("G22")
	fin := c.TransitiveFanin(g22)
	for _, name := range []string{"G22", "G10", "G16", "G11", "G1", "G2", "G3", "G6"} {
		id, _ := c.NetByName(name)
		if !fin[id] {
			t.Errorf("%s must be in fanin of G22", name)
		}
	}
	for _, name := range []string{"G7", "G19", "G23"} {
		id, _ := c.NetByName(name)
		if fin[id] {
			t.Errorf("%s must not be in fanin of G22", name)
		}
	}
	g11, _ := c.NetByName("G11")
	fo := c.TransitiveFanout(g11)
	for _, name := range []string{"G11", "G16", "G19", "G22", "G23"} {
		id, _ := c.NetByName(name)
		if !fo[id] {
			t.Errorf("%s must be in fanout of G11", name)
		}
	}
	g1, _ := c.NetByName("G1")
	if fo[g1] {
		t.Error("G1 must not be in fanout of G11")
	}
}

func TestReconvergentStems(t *testing.T) {
	c := buildC17(t, 10)
	stems := c.ReconvergentStems()
	names := map[string]bool{}
	for _, s := range stems {
		names[c.Net(s).Name] = true
	}
	// G11 feeds G16 and G19 which reconverge at G23; G16 feeds G22 and
	// G23 which do not reconverge (no common successor).
	if !names["G11"] {
		t.Errorf("G11 must be a reconvergent stem, got %v", names)
	}
	if names["G16"] {
		t.Errorf("G16 branches do not reconverge, got %v", names)
	}

	// A pure tree has no reconvergent stems.
	b := NewBuilder("tree")
	b.Input("a")
	b.Input("b")
	b.Input("c")
	b.Input("d")
	b.Gate(AND, 1, "x", "a", "b")
	b.Gate(AND, 1, "y", "c", "d")
	b.Gate(OR, 1, "z", "x", "y")
	b.Output("z")
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.ReconvergentStems(); len(got) != 0 {
		t.Fatalf("tree must have no reconvergent stems, got %v", got)
	}
}

func TestMUXLowering(t *testing.T) {
	b := NewBuilder("mux")
	b.Input("s")
	b.Input("a")
	b.Input("b")
	b.MUX(1, "z", "s", "a", "b")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 4 {
		t.Fatalf("MUX must lower to 4 gates, got %d", c.NumGates())
	}
	// Check function via direct evaluation over all 8 input vectors.
	for s := 0; s <= 1; s++ {
		for a := 0; a <= 1; a++ {
			for bb := 0; bb <= 1; bb++ {
				vals := map[string]int{"s": s, "a": a, "b": bb}
				got := evalNet(c, "z", vals)
				want := a
				if s == 1 {
					want = bb
				}
				if got != want {
					t.Fatalf("MUX(s=%d,a=%d,b=%d) = %d, want %d", s, a, bb, got, want)
				}
			}
		}
	}
}

// evalNet evaluates the final value of a named net under the given PI
// assignment (zero-delay semantics), for tests.
func evalNet(c *Circuit, name string, pi map[string]int) int {
	vals := make([]int, c.NumNets())
	for i := range vals {
		vals[i] = -1
	}
	for n, v := range pi {
		id, ok := c.NetByName(n)
		if !ok {
			panic("unknown PI " + n)
		}
		vals[id] = v
	}
	for _, gid := range c.TopoGates() {
		g := c.Gate(gid)
		in := make([]int, len(g.Inputs))
		for i, x := range g.Inputs {
			if vals[x] < 0 {
				panic("unset net " + c.Net(x).Name)
			}
			in[i] = vals[x]
		}
		vals[g.Output] = g.Type.Eval(in)
	}
	id, ok := c.NetByName(name)
	if !ok {
		panic("unknown net " + name)
	}
	return vals[id]
}

func TestStats(t *testing.T) {
	c := buildC17(t, 10)
	s := c.Stats()
	if s.Gates != 6 || s.Nets != 11 || s.PIs != 5 || s.POs != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxFanin != 2 || s.MaxFanout != 2 || s.Levels != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSortedNetNames(t *testing.T) {
	c := buildC17(t, 10)
	names := c.SortedNetNames()
	if len(names) != 11 {
		t.Fatalf("len = %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}
