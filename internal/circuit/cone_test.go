package circuit

import "testing"

func TestExtractCone(t *testing.T) {
	c := buildC17(t, 10)
	g22, _ := c.NetByName("G22")
	cone, err := ExtractCone(c, g22)
	if err != nil {
		t.Fatal(err)
	}
	// G22's cone: gates G10, G11, G16, G22 and inputs G1, G2, G3, G6.
	st := cone.Stats()
	if st.Gates != 4 || st.PIs != 4 || st.POs != 1 {
		t.Fatalf("cone shape: %+v", st)
	}
	for _, name := range []string{"G7", "G19", "G23"} {
		if _, ok := cone.NetByName(name); ok {
			t.Errorf("%s must not be in G22's cone", name)
		}
	}
	// Functional equivalence over the cone inputs (G1,G2,G3,G6 order
	// may differ; map by name).
	for bits := 0; bits < 16; bits++ {
		coneAsg := map[string]int{}
		for i, n := range []string{"G1", "G2", "G3", "G6"} {
			coneAsg[n] = (bits >> i) & 1
		}
		fullAsg := map[string]int{"G7": 0}
		for n, v := range coneAsg {
			fullAsg[n] = v
		}
		if evalNet(c, "G22", fullAsg) != evalNet(cone, "G22", coneAsg) {
			t.Fatalf("cone differs on vector %04b", bits)
		}
	}
	// Delays preserved.
	for i := 0; i < cone.NumGates(); i++ {
		if cone.Gate(GateID(i)).Delay != 10 {
			t.Fatal("cone lost delays")
		}
	}
}

// TestExtractConeMapped checks the id translation invariants the
// cone-sliced verifier depends on: FromCone strictly increasing (so
// every relative net-id comparison agrees between cone and original),
// ToCone/FromCone mutually inverse, PIIndex pointing at the right
// original primary-input positions, and both delay bounds preserved.
func TestExtractConeMapped(t *testing.T) {
	c := buildC17(t, 10)
	// Split d_min from d_max on every gate so the DMin carry-over is
	// actually exercised (Builder.Gate defaults DMin to the delay arg).
	for i := 0; i < c.NumGates(); i++ {
		c.Gate(GateID(i)).DMin = int64(3 + i)
	}
	g22, _ := c.NetByName("G22")
	cone, cm, err := ExtractConeMapped(c, g22)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Sink == InvalidNet || cone.Net(cm.Sink).Name != "G22" {
		t.Fatalf("Sink = %v (%q), want cone id of G22", cm.Sink, cone.Net(cm.Sink).Name)
	}
	if len(cm.FromCone) != cone.NumNets() || len(cm.ToCone) != c.NumNets() {
		t.Fatalf("map sizes: FromCone %d (cone nets %d), ToCone %d (orig nets %d)",
			len(cm.FromCone), cone.NumNets(), len(cm.ToCone), c.NumNets())
	}
	for i := 1; i < len(cm.FromCone); i++ {
		if cm.FromCone[i] <= cm.FromCone[i-1] {
			t.Fatalf("FromCone not strictly increasing at %d: %v", i, cm.FromCone)
		}
	}
	inCone := 0
	for orig, id := range cm.ToCone {
		if id == InvalidNet {
			continue
		}
		inCone++
		if cm.FromCone[id] != NetID(orig) {
			t.Fatalf("ToCone/FromCone disagree: orig %d -> cone %d -> orig %d",
				orig, id, cm.FromCone[id])
		}
		if cone.Net(id).Name != c.Net(NetID(orig)).Name {
			t.Fatalf("net %d renamed: %q vs %q", orig, c.Net(NetID(orig)).Name, cone.Net(id).Name)
		}
		if cone.Net(id).IsPI != c.Net(NetID(orig)).IsPI {
			t.Fatalf("net %q changed PI status", cone.Net(id).Name)
		}
	}
	if inCone != cone.NumNets() {
		t.Fatalf("ToCone covers %d nets, cone has %d", inCone, cone.NumNets())
	}
	origPIs := c.PrimaryInputs()
	for i, pi := range cone.PrimaryInputs() {
		if origPIs[cm.PIIndex[i]] != cm.FromCone[pi] {
			t.Fatalf("PIIndex[%d] = %d points at %v, want %v",
				i, cm.PIIndex[i], origPIs[cm.PIIndex[i]], cm.FromCone[pi])
		}
	}
	// Both delay bounds survive the slice (gate ids differ; match by
	// output net).
	for j := 0; j < cone.NumGates(); j++ {
		cg := cone.Gate(GateID(j))
		og := c.Gate(c.Net(cm.FromCone[cg.Output]).Driver)
		if cg.Delay != og.Delay || cg.DMin != og.DMin {
			t.Fatalf("gate driving %q: delay [%d,%d], want [%d,%d]",
				cone.Net(cg.Output).Name, cg.DMin, cg.Delay, og.DMin, og.Delay)
		}
	}
}

// TestExtractConeDeterministic extracts the same cone twice and
// requires identical net numbering and gate order — the shared-prepare
// cache hands one slice to many goroutines and differential tests
// assume reproducible ids.
func TestExtractConeDeterministic(t *testing.T) {
	c := buildC17(t, 10)
	g23, _ := c.NetByName("G23")
	a, cma, err := ExtractConeMapped(c, g23)
	if err != nil {
		t.Fatal(err)
	}
	b, cmb, err := ExtractConeMapped(c, g23)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNets() != b.NumNets() || a.NumGates() != b.NumGates() || cma.Sink != cmb.Sink {
		t.Fatalf("shapes differ: %+v vs %+v", a.Stats(), b.Stats())
	}
	for i := 0; i < a.NumNets(); i++ {
		if a.Net(NetID(i)).Name != b.Net(NetID(i)).Name || cma.FromCone[i] != cmb.FromCone[i] {
			t.Fatalf("net %d differs between extractions", i)
		}
	}
	for i := 0; i < a.NumGates(); i++ {
		ga, gb := a.Gate(GateID(i)), b.Gate(GateID(i))
		if ga.Type != gb.Type || ga.Output != gb.Output || len(ga.Inputs) != len(gb.Inputs) {
			t.Fatalf("gate %d differs between extractions", i)
		}
	}
}

func TestExtractConeOfInput(t *testing.T) {
	c := buildC17(t, 10)
	g1, _ := c.NetByName("G1")
	cone, err := ExtractCone(c, g1)
	if err != nil {
		t.Fatal(err)
	}
	if cone.NumGates() != 0 || len(cone.PrimaryInputs()) != 1 || len(cone.PrimaryOutputs()) != 1 {
		t.Fatalf("input cone shape: %+v", cone.Stats())
	}
}
