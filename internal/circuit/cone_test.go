package circuit

import "testing"

func TestExtractCone(t *testing.T) {
	c := buildC17(t, 10)
	g22, _ := c.NetByName("G22")
	cone, err := ExtractCone(c, g22)
	if err != nil {
		t.Fatal(err)
	}
	// G22's cone: gates G10, G11, G16, G22 and inputs G1, G2, G3, G6.
	st := cone.Stats()
	if st.Gates != 4 || st.PIs != 4 || st.POs != 1 {
		t.Fatalf("cone shape: %+v", st)
	}
	for _, name := range []string{"G7", "G19", "G23"} {
		if _, ok := cone.NetByName(name); ok {
			t.Errorf("%s must not be in G22's cone", name)
		}
	}
	// Functional equivalence over the cone inputs (G1,G2,G3,G6 order
	// may differ; map by name).
	for bits := 0; bits < 16; bits++ {
		coneAsg := map[string]int{}
		for i, n := range []string{"G1", "G2", "G3", "G6"} {
			coneAsg[n] = (bits >> i) & 1
		}
		fullAsg := map[string]int{"G7": 0}
		for n, v := range coneAsg {
			fullAsg[n] = v
		}
		if evalNet(c, "G22", fullAsg) != evalNet(cone, "G22", coneAsg) {
			t.Fatalf("cone differs on vector %04b", bits)
		}
	}
	// Delays preserved.
	for i := 0; i < cone.NumGates(); i++ {
		if cone.Gate(GateID(i)).Delay != 10 {
			t.Fatal("cone lost delays")
		}
	}
}

func TestExtractConeOfInput(t *testing.T) {
	c := buildC17(t, 10)
	g1, _ := c.NetByName("G1")
	cone, err := ExtractCone(c, g1)
	if err != nil {
		t.Fatal(err)
	}
	if cone.NumGates() != 0 || len(cone.PrimaryInputs()) != 1 || len(cone.PrimaryOutputs()) != 1 {
		t.Fatalf("input cone shape: %+v", cone.Stats())
	}
}
