package circuit

import "testing"

// FuzzReadBench asserts the .bench parser never panics and that
// whatever parses also re-parses after a write round trip.
func FuzzReadBench(f *testing.F) {
	f.Add("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")
	f.Add(c17Bench)
	f.Add("INPUT(a)\nOUTPUT(z)\nz = AND(a, a) # !delay=3\n")
	f.Add("garbage = = (")
	f.Add("INPUT(a)\nOUTPUT(a)\n")
	f.Add("z = XNOR(a, b, c)")
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(s)\nw = NAND(a, b) # !delay=10\ns = NOR(w, w) # !delay=0\n")
	f.Add("# comment only\n\n  \nINPUT( spaced )\nOUTPUT( spaced )\n")
	f.Add("INPUT(a)\nOUTPUT(z)\nz = BUFF(a) # !delay=9223372036854775807\n")
	f.Add("INPUT(a)\nOUTPUT(z)\nz = AND(a, a) # !delay=-3\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseBenchString(src, BenchOptions{DefaultDelay: 2})
		if err != nil {
			return
		}
		out := BenchString(c)
		c2, err := ParseBenchString(out, BenchOptions{DefaultDelay: 9})
		if err != nil {
			t.Fatalf("round trip failed: %v\ninput:\n%s\nemitted:\n%s", err, src, out)
		}
		if c2.NumGates() != c.NumGates() || c2.NumNets() != c.NumNets() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				c.NumGates(), c.NumNets(), c2.NumGates(), c2.NumNets())
		}
	})
}
