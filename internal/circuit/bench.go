package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// BenchOptions control .bench parsing.
type BenchOptions struct {
	// DefaultDelay is the d_max assigned to gates without an explicit
	// "# !delay=" directive. The paper's experiments use 10.
	DefaultDelay int64
	// Name is the circuit name; defaults to "bench".
	Name string
}

// ReadBench parses an ISCAS'85-style .bench netlist:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G17)
//	G10 = NAND(G1, G3)          # !delay=12
//
// The non-standard trailing "# !delay=N" directive backannotates the
// gate's maximum delay; all other comments are ignored. The gate
// mnemonics of the paper's library are accepted (AND, NAND, OR, NOR,
// NOT/INV, BUF/BUFF/BUFFER, DELAY, XOR, XNOR).
func ReadBench(r io.Reader, opt BenchOptions) (*Circuit, error) {
	if opt.DefaultDelay == 0 {
		opt.DefaultDelay = 1
	}
	if opt.Name == "" {
		opt.Name = "bench"
	}
	b := NewBuilder(opt.Name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		delay := opt.DefaultDelay
		if i := strings.Index(line, "#"); i >= 0 {
			comment := strings.TrimSpace(line[i+1:])
			if strings.HasPrefix(comment, "!delay=") {
				d, err := strconv.ParseInt(strings.TrimSpace(comment[len("!delay="):]), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bench line %d: bad !delay directive: %v", lineNo, err)
				}
				delay = d
			}
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(upper(line), "INPUT(") && strings.HasSuffix(line, ")"):
			b.Input(strings.TrimSpace(line[len("INPUT(") : len(line)-1]))
		case strings.HasPrefix(upper(line), "OUTPUT(") && strings.HasSuffix(line, ")"):
			b.Output(strings.TrimSpace(line[len("OUTPUT(") : len(line)-1]))
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("bench line %d: expected assignment, got %q", lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			if open < 0 || !strings.HasSuffix(rhs, ")") {
				return nil, fmt.Errorf("bench line %d: malformed gate expression %q", lineNo, rhs)
			}
			tname := strings.TrimSpace(rhs[:open])
			gt, ok := ParseGateType(tname)
			if !ok {
				return nil, fmt.Errorf("bench line %d: unknown gate type %q", lineNo, tname)
			}
			var ins []string
			for _, f := range strings.Split(rhs[open+1:len(rhs)-1], ",") {
				f = strings.TrimSpace(f)
				if f == "" {
					return nil, fmt.Errorf("bench line %d: empty input name", lineNo)
				}
				ins = append(ins, f)
			}
			b.Gate(gt, delay, out, ins...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: read: %v", err)
	}
	return b.Build()
}

// WriteBench renders the circuit in .bench syntax, emitting a
// "# !delay=" directive on every gate line so delays round-trip.
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# circuit %s: %d gates, %d nets\n", c.Name, c.NumGates(), c.NumNets())
	for _, pi := range c.PrimaryInputs() {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Net(pi).Name)
	}
	for _, po := range c.PrimaryOutputs() {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Net(po).Name)
	}
	for _, gid := range c.TopoGates() {
		g := c.Gate(gid)
		names := make([]string, len(g.Inputs))
		for i, in := range g.Inputs {
			names[i] = c.Net(in).Name
		}
		fmt.Fprintf(bw, "%s = %s(%s) # !delay=%d\n", c.Net(g.Output).Name, g.Type, strings.Join(names, ", "), g.Delay)
	}
	return bw.Flush()
}

// ParseBenchString is ReadBench over a string.
func ParseBenchString(s string, opt BenchOptions) (*Circuit, error) {
	return ReadBench(strings.NewReader(s), opt)
}

// BenchString renders the circuit to a .bench string (panics only on
// impossible writer errors).
func BenchString(c *Circuit) string {
	var sb strings.Builder
	if err := WriteBench(&sb, c); err != nil {
		panic(err)
	}
	return sb.String()
}

// SortedNetNames returns all net names in lexicographic order (handy
// for deterministic reports and tests).
func (c *Circuit) SortedNetNames() []string {
	names := make([]string, len(c.nets))
	for i := range c.nets {
		names[i] = c.nets[i].Name
	}
	sort.Strings(names)
	return names
}
