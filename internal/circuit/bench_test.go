package circuit

import (
	"strings"
	"testing"
)

const c17Bench = `
# c17 — the classic 6-NAND benchmark
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func TestReadBench(t *testing.T) {
	c, err := ParseBenchString(c17Bench, BenchOptions{DefaultDelay: 10, Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 6 || len(c.PrimaryInputs()) != 5 || len(c.PrimaryOutputs()) != 2 {
		t.Fatalf("parsed shape wrong: %+v", c.Stats())
	}
	for i := 0; i < c.NumGates(); i++ {
		if c.Gate(GateID(i)).Delay != 10 {
			t.Fatal("default delay not applied")
		}
		if c.Gate(GateID(i)).Type != NAND {
			t.Fatal("gate type wrong")
		}
	}
}

func TestReadBenchDelayDirective(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
x = AND(a, b) # !delay=42
z = NOT(x)    # ordinary comment
`
	c, err := ParseBenchString(src, BenchOptions{DefaultDelay: 7})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := c.NetByName("x")
	z, _ := c.NetByName("z")
	if d := c.Gate(c.Net(x).Driver).Delay; d != 42 {
		t.Fatalf("x delay = %d, want 42", d)
	}
	if d := c.Gate(c.Net(z).Driver).Delay; d != 7 {
		t.Fatalf("z delay = %d, want 7 (default)", d)
	}
}

func TestReadBenchErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n", "unknown gate type"},
		{"INPUT(a)\nOUTPUT(z)\nz NOT(a)\n", "expected assignment"},
		{"INPUT(a)\nOUTPUT(z)\nz = NOT a\n", "malformed gate"},
		{"INPUT(a)\nOUTPUT(z)\nz = NOT(a,)\n", "empty input name"},
		{"INPUT(a)\nOUTPUT(z)\nz = NOT(a) # !delay=xyz\n", "bad !delay"},
	}
	for _, c := range cases {
		_, err := ParseBenchString(c.src, BenchOptions{})
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("src %q: err = %v, want containing %q", c.src, err, c.wantSub)
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	c, err := ParseBenchString(c17Bench, BenchOptions{DefaultDelay: 10, Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	out := BenchString(c)
	c2, err := ParseBenchString(out, BenchOptions{DefaultDelay: 1, Name: "c17"})
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if c2.NumGates() != c.NumGates() || c2.NumNets() != c.NumNets() {
		t.Fatal("round trip changed shape")
	}
	// Delays must round-trip through the !delay directive despite the
	// different default.
	for i := 0; i < c2.NumGates(); i++ {
		if c2.Gate(GateID(i)).Delay != 10 {
			t.Fatal("delay did not round-trip")
		}
	}
	// Functional equivalence over all 32 input vectors.
	pis := []string{"G1", "G2", "G3", "G6", "G7"}
	for v := 0; v < 32; v++ {
		asg := map[string]int{}
		for i, p := range pis {
			asg[p] = (v >> i) & 1
		}
		for _, o := range []string{"G22", "G23"} {
			if evalNet(c, o, asg) != evalNet(c2, o, asg) {
				t.Fatalf("vector %d differs on %s", v, o)
			}
		}
	}
}

func TestMapToNORPreservesFunction(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z1)
OUTPUT(z2)
OUTPUT(z3)
t1 = AND(a, b)
t2 = OR(b, c)
t3 = XOR(a, c)
t4 = NAND(t1, t2)
t5 = XNOR(t3, b)
z1 = NOR(t4, t5)
z2 = NOT(t3)
z3 = BUFF(t1)
`
	c, err := ParseBenchString(src, BenchOptions{DefaultDelay: 3})
	if err != nil {
		t.Fatal(err)
	}
	n, err := MapToNOR(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Everything must be a NOR with delay 10.
	for i := 0; i < n.NumGates(); i++ {
		g := n.Gate(GateID(i))
		if g.Type != NOR {
			t.Fatalf("gate %d is %s, want NOR", i, g.Type)
		}
		if g.Delay != 10 {
			t.Fatalf("gate %d delay = %d", i, g.Delay)
		}
	}
	for v := 0; v < 8; v++ {
		asg := map[string]int{"a": v & 1, "b": (v >> 1) & 1, "c": (v >> 2) & 1}
		for _, o := range []string{"z1", "z2", "z3"} {
			if evalNet(c, o, asg) != evalNet(n, o, asg) {
				t.Fatalf("NOR mapping changed %s on vector %d", o, v)
			}
		}
	}
}

func TestMapToNORWideXor(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(p)
OUTPUT(q)
p = XOR(a, b, c, d)
q = XNOR(a, b, c)
`
	c, err := ParseBenchString(src, BenchOptions{DefaultDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := MapToNOR(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 16; v++ {
		asg := map[string]int{"a": v & 1, "b": (v >> 1) & 1, "c": (v >> 2) & 1, "d": (v >> 3) & 1}
		for _, o := range []string{"p", "q"} {
			if evalNet(c, o, asg) != evalNet(n, o, asg) {
				t.Fatalf("wide parity mapping changed %s on vector %d", o, v)
			}
		}
	}
}

func TestWithUniformDelay(t *testing.T) {
	c, err := ParseBenchString(c17Bench, BenchOptions{DefaultDelay: 10})
	if err != nil {
		t.Fatal(err)
	}
	u, err := WithUniformDelay(c, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < u.NumGates(); i++ {
		if u.Gate(GateID(i)).Delay != 25 {
			t.Fatal("uniform delay not applied")
		}
	}
	if u.NumGates() != c.NumGates() {
		t.Fatal("shape changed")
	}
}
