package repro_test

// One benchmark per table/figure of the paper's evaluation (see
// DESIGN.md §5 for the experiment index), plus the A1 ablations of the
// design choices. Expensive sub-benchmarks compute their workload and
// reference δ once, outside the timed loop.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/circuit"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/waveform"
)

// --- E1: Figure 1 / Example 2 -------------------------------------------

func BenchmarkFig1Example2Refute(b *testing.B) {
	c := gen.Hrapcenko(10)
	s, _ := c.NetByName("s")
	v := core.NewVerifier(c, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.Check(s, 61).Final != core.NoViolation {
			b.Fatal("δ=61 must be refuted")
		}
	}
}

func BenchmarkFig1Example2Witness(b *testing.B) {
	c := gen.Hrapcenko(10)
	s, _ := c.NetByName("s")
	v := core.NewVerifier(c, core.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.Check(s, 60).Final != core.ViolationFound {
			b.Fatal("δ=60 must be witnessed")
		}
	}
}

// --- E2: Figures 2–3 carry-skip dominators ------------------------------

func BenchmarkFig23CarrySkipDominators(b *testing.B) {
	c := gen.CarrySkipAdder(8, 4, 10)
	cout, _ := c.NetByName("cout")
	v := core.NewVerifier(c, core.Default())
	res, err := v.ExactFloatingDelay(cout)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.Check(cout, res.Delay.Add(1)).Final != core.NoViolation {
			b.Fatal("δ+1 must be refuted")
		}
	}
}

// --- E4: Section-6 16-bit carry-skip adder ------------------------------

func BenchmarkCarrySkip16Exact(b *testing.B) {
	c := gen.CarrySkipAdder(16, 4, 10)
	cout, _ := c.NetByName("cout")
	v := core.NewVerifier(c, core.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := v.ExactFloatingDelay(cout)
		if err != nil || !res.Exact {
			b.Fatalf("exact delay failed: %v %+v", err, res)
		}
	}
}

// --- E5: c1908 dominator anecdote ----------------------------------------

func BenchmarkC1908DominatorAnecdote(b *testing.B) {
	for i := 0; i < b.N; i++ {
		an := harness.Anecdote()
		if an.WithDomVerdict != core.NoViolation {
			b.Fatal("dominators must prove the bound")
		}
	}
}

// --- E3: Table 1 ----------------------------------------------------------
//
// One sub-benchmark per suite circuit; each iteration regenerates the
// circuit's two Table-1 rows. The exact δ is discovered inside
// CircuitRows (that cost is part of what the table measures). The large
// c6288 stand-in runs with a reduced backtrack budget so a bench sweep
// stays tractable; cmd/table1 runs it in full.

var suiteOnce sync.Once
var suiteEntries []gen.SuiteEntry

func suite() []gen.SuiteEntry {
	suiteOnce.Do(func() { suiteEntries = gen.SubstituteSuite() })
	return suiteEntries
}

func benchTable1(b *testing.B, name string, budget int) {
	var entry gen.SuiteEntry
	for _, e := range suite() {
		if e.Name == name {
			entry = e
			break
		}
	}
	if entry.Circuit == nil {
		b.Fatalf("no suite entry %s", name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := harness.CircuitRows(entry.Name, entry.Circuit, budget)
		if len(rows) != 2 {
			b.Fatal("expected two rows")
		}
	}
}

func BenchmarkTable1C17(b *testing.B)   { benchTable1(b, "c17", 200000) }
func BenchmarkTable1C432(b *testing.B)  { benchTable1(b, "c432", 200000) }
func BenchmarkTable1C499(b *testing.B)  { benchTable1(b, "c499", 200000) }
func BenchmarkTable1C880(b *testing.B)  { benchTable1(b, "c880", 200000) }
func BenchmarkTable1C1355(b *testing.B) { benchTable1(b, "c1355", 200000) }
func BenchmarkTable1C1908(b *testing.B) { benchTable1(b, "c1908", 200000) }
func BenchmarkTable1C2670(b *testing.B) { benchTable1(b, "c2670", 200000) }
func BenchmarkTable1C3540(b *testing.B) { benchTable1(b, "c3540", 200000) }
func BenchmarkTable1C5315(b *testing.B) { benchTable1(b, "c5315", 200000) }
func BenchmarkTable1C6288(b *testing.B) { benchTable1(b, "c6288", 500) }
func BenchmarkTable1C7552(b *testing.B) { benchTable1(b, "c7552", 200000) }

// --- A1: ablations of the design choices ---------------------------------

// ablationDelta computes the exact floating delay of the sink once so
// the ablated configurations all answer the same (δ+1) question.
func ablationDelta(b *testing.B, c *circuit.Circuit, sinkName string) (circuit.NetID, waveform.Time) {
	sink, ok := c.NetByName(sinkName)
	if !ok {
		b.Fatalf("no net %s", sinkName)
	}
	v := core.NewVerifier(c, core.Default())
	res, err := v.ExactFloatingDelay(sink)
	if err != nil || !res.Exact {
		b.Fatalf("reference delay failed: %v %+v", err, res)
	}
	return sink, res.Delay.Add(1)
}

func benchAblation(b *testing.B, opts core.Options) {
	c := gen.CarrySkipAdder(12, 4, 10)
	sink, delta := ablationDelta(b, c, "cout")
	opts.MaxBacktracks = 1 << 20
	v := core.NewVerifier(c, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := v.Check(sink, delta)
		if rep.Final != core.NoViolation {
			b.Fatalf("ablated config must still refute exactly, got %s", rep.Final)
		}
		bt := rep.Backtracks
		if bt < 0 {
			bt = 0 // refuted before the search started
		}
		b.ReportMetric(float64(bt), "backtracks/op")
	}
}

func BenchmarkAblationFull(b *testing.B) { benchAblation(b, core.Default()) }

func BenchmarkAblationNoDominators(b *testing.B) {
	o := core.Default()
	o.UseDominators = false
	benchAblation(b, o)
}

func BenchmarkAblationNoLearning(b *testing.B) {
	o := core.Default()
	o.UseLearning = false
	benchAblation(b, o)
}

func BenchmarkAblationNoStemCorrelation(b *testing.B) {
	o := core.Default()
	o.UseStemCorrelation = false
	benchAblation(b, o)
}

func BenchmarkAblationPlainSearch(b *testing.B) {
	benchAblation(b, core.Options{}) // case analysis over bare narrowing
}

func BenchmarkAblationStaticDominatorsOnly(b *testing.B) {
	// Lemma-3 static dominators instead of the dynamic Theorem-3 ones:
	// cheaper to compute, weaker implications.
	o := core.Default()
	o.UseDominators = false
	o.UseStaticDominators = true
	benchAblation(b, o)
}

// --- E6: Run API overhead -------------------------------------------------
//
// The Run path with a nil tracer and no deadline must cost the same as
// the legacy Check (which is now a wrapper over it): observability that
// is off must be free. BenchmarkRunTraced measures the StatsTracer tax.

func benchRun(b *testing.B, req core.Request) {
	c := gen.Hrapcenko(10)
	s, _ := c.NetByName("s")
	v := core.NewVerifier(c, core.Default())
	req.Sink, req.Delta = s, 61
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.Run(ctx, req).Final != core.NoViolation {
			b.Fatal("δ=61 must be refuted")
		}
	}
}

func BenchmarkRunNilTracer(b *testing.B) { benchRun(b, core.Request{}) }

func BenchmarkRunStatsTracer(b *testing.B) {
	benchRun(b, core.Request{Tracer: new(core.StatsTracer)})
}

func BenchmarkRunWithDeadline(b *testing.B) {
	benchRun(b, core.Request{Deadline: time.Now().Add(time.Hour)})
}

func BenchmarkRunAllParallelC880(b *testing.B) {
	var entry gen.SuiteEntry
	for _, e := range suite() {
		if e.Name == "c880" {
			entry = e
		}
	}
	v := core.NewVerifier(entry.Circuit, core.Default())
	delta := v.Topological().Add(1)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.RunAll(ctx, core.Request{Delta: delta, Workers: 0}).Final != core.NoViolation {
			b.Fatal("δ=top+1 must be refuted")
		}
	}
}

// --- E7: cone-sliced solving ---------------------------------------------
//
// Whole-circuit vs fan-in-cone solving on a multi-output industrial
// block at δ = top+1 (every check refuted; the verdicts are asserted
// identical by TestConeDifferentialParallelRunAll and friends). The
// block's outputs see only a fraction of the netlist each, so the cone
// configuration should win on both time and allocations. One warmup
// sweep outside the timer pays the per-sink cone construction once —
// steady state is what a delay search or repeated sweep observes:
// warm-started (the default) and report-arena-backed, it runs
// allocation-free.

func benchIndustrialSweep(b *testing.B, cone bool) {
	c := gen.Industrial(7, 48, 10)
	opts := core.Default()
	opts.UseConeSlicing = cone
	v := core.NewVerifier(c, opts)
	delta := v.Topological().Add(1)
	ctx := context.Background()
	req := core.Request{Delta: delta, Workers: 1, Arena: new(core.ReportArena)}
	if v.RunAll(ctx, req).Final != core.NoViolation {
		b.Fatal("δ=top+1 must be refuted")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.RunAll(ctx, req).Final != core.NoViolation {
			b.Fatal("δ=top+1 must be refuted")
		}
	}
}

func BenchmarkIndustrialSweepWhole(b *testing.B) { benchIndustrialSweep(b, false) }
func BenchmarkIndustrialSweepCone(b *testing.B)  { benchIndustrialSweep(b, true) }

// flightBenchTracer reproduces the daemon's always-on emission path —
// the shared obs.Tracer histograms plus one flight record and one
// latency exemplar per finished check — so the Flight variant below
// prices the recorder exactly where the server pays for it.
type flightBenchTracer struct {
	*obs.Tracer
	c       *circuit.Circuit
	fr      *obs.FlightRecorder
	traceID string
}

func (t flightBenchTracer) CheckDone(rep *core.Report) {
	t.Tracer.CheckDone(rep)
	t.fr.Record(&obs.CheckRecord{
		TraceID:      t.traceID,
		Sink:         t.c.Net(rep.Sink).Name,
		Delta:        int64(rep.Delta),
		Verdict:      rep.Final.String(),
		ElapsedUs:    rep.Elapsed.Microseconds(),
		Propagations: rep.Propagations,
		Backtracks:   rep.Backtracks,
	})
	t.Tracer.CheckSeconds.SetExemplar(rep.Elapsed.Nanoseconds(), t.traceID)
}

// BenchmarkIndustrialSweepConeFlight is the cone sweep with the flight
// recorder and metrics tracer live, the configuration every daemon
// check actually runs in. Gated against the committed snapshot next to
// the no-tracer BenchmarkIndustrialSweepCone so the always-on recorder
// can never silently grow a tax on the hot path.
func BenchmarkIndustrialSweepConeFlight(b *testing.B) {
	c := gen.Industrial(7, 48, 10)
	opts := core.Default()
	opts.UseConeSlicing = true
	v := core.NewVerifier(c, opts)
	delta := v.Topological().Add(1)
	ctx := context.Background()
	tr := flightBenchTracer{
		Tracer:  obs.NewTracer(),
		c:       c,
		fr:      obs.NewFlightRecorder(256, 32),
		traceID: api.NewTraceID(),
	}
	req := core.Request{Delta: delta, Workers: 1, Arena: new(core.ReportArena), Tracer: tr}
	if v.RunAll(ctx, req).Final != core.NoViolation {
		b.Fatal("δ=top+1 must be refuted")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.RunAll(ctx, req).Final != core.NoViolation {
			b.Fatal("δ=top+1 must be refuted")
		}
	}
}

// --- substrate micro-benchmarks ------------------------------------------

func BenchmarkFixpointCarrySkip16(b *testing.B) {
	c := gen.CarrySkipAdder(16, 4, 10)
	cout, _ := c.NetByName("cout")
	v := core.NewVerifier(c, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := v.SystemAfterFixpoint(cout, 200)
		if sys.Inconsistent() {
			b.Fatal("unexpected inconsistency")
		}
	}
}

// Scheduler-discipline comparison: FIFO (the paper's event queue) vs
// alternating topological sweeps, on the NOR-mapped multiplier.
func benchScheduler(b *testing.B, mode constraint.ScheduleMode) {
	c, err := circuit.MapToNOR(gen.ArrayMultiplier(6, 1), 10)
	if err != nil {
		b.Fatal(err)
	}
	po := c.PrimaryOutputs()[len(c.PrimaryOutputs())-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := constraint.New(c)
		sys.SetScheduleMode(mode)
		sys.Narrow(po, waveform.CheckOutput(300))
		sys.ScheduleAll()
		sys.Fixpoint()
		b.ReportMetric(float64(sys.Propagations), "propagations/op")
	}
}

func BenchmarkSchedulerFIFO(b *testing.B)  { benchScheduler(b, constraint.FIFO) }
func BenchmarkSchedulerSweep(b *testing.B) { benchScheduler(b, constraint.Sweep) }

func BenchmarkNORMapping(b *testing.B) {
	c := gen.ArrayMultiplier(8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := circuit.MapToNOR(c, 10); err != nil {
			b.Fatal(err)
		}
	}
}
